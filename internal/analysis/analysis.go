// Package analysis is the static-analysis subsystem for Datalog
// programs: it runs a suite of analyzers over a loaded program — the EDB
// schema plus the IDB rules — and returns structured, source-anchored
// diagnostics. The preconditions the paper's algorithms rely on
// (Algorithm 1 assumes safe, well-formed rules; Algorithm 2 requires
// strongly linear, typed recursion, §2.1/§5) are checked here once, at
// load time, instead of surfacing as ad-hoc errors at query time; the
// same pass yields a program profile (rule counts per recursion
// classification) the engine and the benchmarks can plan against.
//
// The package is deliberately self-contained: analyzers are pure
// functions over an immutable Pass, so the suite is safe to run
// concurrently and can be fuzzed against arbitrary parseable programs.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"kdb/internal/depgraph"
	"kdb/internal/obs/sysrel"
	"kdb/internal/parser"
	"kdb/internal/term"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities, ordered by increasing gravity.
const (
	// SevInfo is a neutral report (e.g. a recursion classification).
	SevInfo Severity = iota
	// SevWarning marks a program that is loadable but suspicious or
	// degraded: rules that can never fire, unreachable predicates,
	// recursion the describe engine must handle in bounded mode.
	SevWarning
	// SevError marks a defect that makes the program unevaluable (unsafe
	// rules, arity conflicts); loads reject programs with errors.
	SevError
)

var severityNames = map[Severity]string{
	SevInfo: "info", SevWarning: "warning", SevError: "error",
}

// String names the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for sev, n := range severityNames {
		if n == name {
			*s = sev
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown severity %q", name)
}

// Diagnostic is one finding of one analyzer. All fields are plain data,
// so a diagnostic round-trips through encoding/json.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Pos points at the offending clause (its head), when known.
	Pos term.Pos `json:"pos,omitzero"`
	// Subject is the predicate the finding concerns, when there is one.
	Subject string `json:"subject,omitempty"`
	// Message is the human-readable finding.
	Message string `json:"message"`
	// Rules renders the related rules (the offending clause first).
	Rules []string `json:"rules,omitempty"`
}

// String renders the diagnostic one per line: "pos: severity: [analyzer]
// message" (the position is omitted when unknown).
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "%s: [%s] %s", d.Severity, d.Analyzer, d.Message)
	return b.String()
}

// Error aggregates the error-severity diagnostics that made a program
// rejectable, so load failures carry the full structured findings.
type Error struct {
	Diags []Diagnostic
}

// Error renders every diagnostic, one per line.
func (e *Error) Error() string {
	lines := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		lines[i] = d.String()
	}
	return "analysis: program rejected:\n  " + strings.Join(lines, "\n  ")
}

// Program is the unit of analysis: the IDB rules, the integrity
// constraints, and the EDB schema (stored or declared relations with
// their arities). Build one with FromProgram (a freshly parsed source)
// or assemble it from a live knowledge base.
type Program struct {
	// Rules are the IDB rules, including bodiless IDB clauses.
	Rules []term.Rule
	// Facts are the EDB fact clauses, with positions, kept so the arity
	// analyzer can compare every use site (the EDB map records only one
	// arity per predicate).
	Facts []term.Rule
	// Constraints are the integrity constraints (headless clauses).
	Constraints []term.Formula
	// ConstraintPos are the constraint positions, parallel to
	// Constraints when known (may be shorter; missing entries are zero).
	ConstraintPos []term.Pos
	// EDB maps each extensional (stored or schema-declared) predicate to
	// its arity.
	EDB map[string]int
}

// FromProgram classifies a parsed source the way the knowledge base
// loads it: a predicate heading any non-fact clause is intensional and
// all its clauses are rules; ground bodiless clauses of other predicates
// are EDB facts. @key declarations contribute EDB arities.
func FromProgram(prog *parser.Program) *Program {
	intensional := make(map[string]bool)
	for _, c := range prog.Clauses {
		if !c.IsFact() {
			intensional[c.Head.Pred] = true
		}
	}
	p := &Program{EDB: make(map[string]int)}
	for _, c := range prog.Clauses {
		if c.IsFact() && !intensional[c.Head.Pred] {
			if _, ok := p.EDB[c.Head.Pred]; !ok {
				p.EDB[c.Head.Pred] = c.Head.Arity()
			}
			p.Facts = append(p.Facts, c)
		} else {
			p.Rules = append(p.Rules, c)
		}
	}
	for _, d := range prog.Declarations {
		if d.Kind == parser.DeclKey {
			if _, ok := p.EDB[d.Pred]; !ok && !intensional[d.Pred] {
				p.EDB[d.Pred] = d.Arity
			}
		}
	}
	p.Constraints = append(p.Constraints, prog.Constraints...)
	p.ConstraintPos = append(p.ConstraintPos, prog.ConstraintPos...)
	return p
}

// Pass is the shared, read-only state one analyzer run sees: the program
// plus its dependency analysis, computed once for the whole suite.
type Pass struct {
	Program *Program
	// Graph is the dependency analysis of Program.Rules.
	Graph *depgraph.Graph
	// Defined maps every predicate that is defined — heads a rule or has
	// an EDB relation — to true.
	Defined map[string]bool
}

// Analyzer is one check: a name (stable, used in diagnostics and golden
// files), a one-line doc string, and the run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// Analyzers returns the full suite, in the order reports present them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		safetyAnalyzer,
		arityAnalyzer,
		reservedAnalyzer,
		undefinedAnalyzer,
		unusedAnalyzer,
		recursionAnalyzer,
		contradictionAnalyzer,
		duplicateAnalyzer,
	}
}

// Report is the outcome of running a suite over a program.
type Report struct {
	// Diagnostics are all findings, sorted by position, then severity
	// (gravest first), then analyzer name.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Profile summarizes the program shape (rule counts per recursion
	// classification).
	Profile Profile `json:"profile"`
}

// Run executes the analyzers (the full suite when none are given) over
// the program and returns the aggregated report.
func Run(prog *Program, analyzers ...*Analyzer) *Report {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	pass := &Pass{
		Program: prog,
		Graph:   depgraph.New(prog.Rules),
		Defined: make(map[string]bool, len(prog.EDB)),
	}
	for pred := range prog.EDB {
		pass.Defined[pred] = true
	}
	for _, r := range prog.Rules {
		pass.Defined[r.Head.Pred] = true
	}
	// The engine's virtual relations are always defined (and grounded):
	// a body atom over sys_metric is served at query time, not by the
	// program.
	for _, d := range sysrel.Defs() {
		pass.Defined[d.Name] = true
	}
	rep := &Report{Profile: ProfileOf(prog, pass.Graph)}
	for _, a := range analyzers {
		rep.Diagnostics = append(rep.Diagnostics, a.Run(pass)...)
	}
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Pos != b.Pos {
			if a.Pos.File != b.Pos.File {
				return a.Pos.File < b.Pos.File
			}
			if a.Pos.Line != b.Pos.Line {
				return a.Pos.Line < b.Pos.Line
			}
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Analyzer < b.Analyzer
	})
	return rep
}

// HasErrors reports whether any diagnostic is error-severity.
func (r *Report) HasErrors() bool { return len(r.Errors()) > 0 }

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic { return r.filter(SevError) }

// Warnings returns the warning-severity diagnostics.
func (r *Report) Warnings() []Diagnostic { return r.filter(SevWarning) }

func (r *Report) filter(sev Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// ForPred returns the diagnostics whose subject is pred.
func (r *Report) ForPred(pred string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Subject == pred {
			out = append(out, d)
		}
	}
	return out
}

// String renders the report, one diagnostic per line, ending with a
// summary count.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	e, w := len(r.Errors()), len(r.Warnings())
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d diagnostic(s)\n", e, w, len(r.Diagnostics))
	return b.String()
}

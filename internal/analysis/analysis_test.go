package analysis

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"kdb/internal/parser"
)

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.ParseProgramFile("test.kdb", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return FromProgram(prog)
}

// find returns the diagnostics of one analyzer.
func find(rep *Report, analyzer string) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

func TestSafetyAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(X, Y) :- e(X).
q(X) :- e(X), X > Z.
`))
	diags := find(rep, "safety")
	if len(diags) != 2 {
		t.Fatalf("want 2 safety diagnostics, got %d: %v", len(diags), diags)
	}
	if diags[0].Severity != SevError || !strings.Contains(diags[0].Message, "head variable Y") {
		t.Errorf("bad head diagnostic: %+v", diags[0])
	}
	if diags[0].Pos.Line != 3 || diags[0].Pos.File != "test.kdb" {
		t.Errorf("bad position: %+v", diags[0].Pos)
	}
	if !strings.Contains(diags[1].Message, "comparison variable Z") {
		t.Errorf("bad comparison diagnostic: %+v", diags[1])
	}
	if !rep.HasErrors() {
		t.Error("report should have errors")
	}
}

func TestSafetyEqualityPropagation(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(Y) :- e(X), Y = X.
`))
	if diags := find(rep, "safety"); len(diags) != 0 {
		t.Errorf("equality-bound head var flagged: %v", diags)
	}
}

func TestArityAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1, 2).
p(X) :- e(X).
`))
	diags := find(rep, "arity")
	if len(diags) != 1 {
		t.Fatalf("want 1 arity diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Severity != SevError || d.Subject != "e" || !strings.Contains(d.Message, "1 and 2") {
		t.Errorf("bad diagnostic: %+v", d)
	}
}

func TestUndefinedAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(X) :- e(X), ghost(X).
:- e(X), phantom(X).
`))
	diags := find(rep, "undefined")
	if len(diags) != 2 {
		t.Fatalf("want 2 undefined diagnostics, got %v", diags)
	}
	subjects := map[string]bool{}
	for _, d := range diags {
		subjects[d.Subject] = true
		if d.Severity != SevWarning {
			t.Errorf("want warning, got %v", d)
		}
	}
	if !subjects["ghost"] || !subjects["phantom"] {
		t.Errorf("bad subjects: %v", subjects)
	}
}

func TestUnusedAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
orphan(2).
p(X) :- e(X).
island_a(X) :- island_b(X).
island_b(X) :- island_a(X).
`))
	diags := find(rep, "unused")
	subjects := map[string]Severity{}
	for _, d := range diags {
		subjects[d.Subject] = d.Severity
	}
	// orphan: a stored relation nothing references (informational).
	if sev, ok := subjects["orphan"]; !ok || sev != SevInfo {
		t.Errorf("orphan: want info diagnostic, got %v", diags)
	}
	// The island cycle has no grounded derivation path: necessarily empty.
	for _, want := range []string{"island_a", "island_b"} {
		if sev, ok := subjects[want]; !ok || sev != SevWarning {
			t.Errorf("%s: want never-derives warning, got %v", want, diags)
		}
	}
	if _, ok := subjects["p"]; ok {
		t.Errorf("grounded p flagged: %v", diags)
	}
	if _, ok := subjects["e"]; ok {
		t.Errorf("referenced e flagged: %v", diags)
	}
}

func TestUnusedAnalyzerSelfRecursiveRootIsClean(t *testing.T) {
	// A self-recursive top concept with a base case is grounded — it must
	// not be flagged even though only its own rules reference it.
	rep := Run(mustProgram(t, `
par(a, b).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`))
	if diags := find(rep, "unused"); len(diags) != 0 {
		t.Errorf("clean program flagged: %v", diags)
	}
}

func TestArityAnalyzerFactConflict(t *testing.T) {
	rep := Run(mustProgram(t, `
student(ann).
student(bob, cs).
`))
	diags := find(rep, "arity")
	if len(diags) != 1 || diags[0].Subject != "student" {
		t.Fatalf("want 1 arity error for student, got %v", diags)
	}
	if !diags[0].Pos.IsValid() {
		t.Errorf("fact conflict not source-anchored: %+v", diags[0])
	}
}

func TestRecursionAnalyzerTyped(t *testing.T) {
	rep := Run(mustProgram(t, `
par(a, b).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`))
	diags := find(rep, "recursion")
	if len(diags) != 1 {
		t.Fatalf("want 1 recursion diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Severity != SevInfo || !strings.Contains(d.Message, "strongly linear and typed") {
		t.Errorf("bad diagnostic: %+v", d)
	}
}

func TestRecursionAnalyzerUntyped(t *testing.T) {
	rep := Run(mustProgram(t, `
conn(a, b).
reach(X, Y) :- conn(X, Y).
reach(X, Y) :- reach(Y, X).
`))
	diags := find(rep, "recursion")
	var warned, classified bool
	for _, d := range diags {
		if d.Severity == SevWarning && strings.Contains(d.Message, "not typed") {
			warned = true
		}
		if d.Severity == SevInfo && strings.Contains(d.Message, "bounded §5.3 mode") {
			classified = true
		}
	}
	if !warned || !classified {
		t.Errorf("want untyped warning and bounded classification, got %v", diags)
	}
}

func TestRecursionAnalyzerDegenerate(t *testing.T) {
	// Strongly linear and typed, but the head and the recursive body
	// atom agree on every position and share nothing with the rest of
	// the body: the §5.2 transformation has no shared positions.
	rep := Run(mustProgram(t, `
q(1).
p(a).
p(X) :- p(X), q(Y).
`))
	diags := find(rep, "recursion")
	var degenerate bool
	for _, d := range diags {
		if d.Severity == SevWarning && strings.Contains(d.Message, "degenerate") {
			degenerate = true
		}
	}
	if !degenerate {
		t.Errorf("want degenerate-recursion warning, got %v", diags)
	}
}

func TestContradictionAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(X) :- e(X), X > 3, X < 2.
q(X) :- e(X), X > 0.
`))
	diags := find(rep, "contradiction")
	if len(diags) != 1 || diags[0].Subject != "p" {
		t.Fatalf("want 1 contradiction diagnostic for p, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "can never fire") {
		t.Errorf("bad message: %v", diags[0].Message)
	}
}

func TestDuplicateAnalyzer(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(X) :- e(X).
p(Y) :- e(Y).
q(X) :- e(X), X > 1.
q(X) :- e(X), X > 2.
`))
	diags := find(rep, "duplicate")
	if len(diags) != 1 || diags[0].Subject != "p" {
		t.Fatalf("want 1 duplicate diagnostic for p, got %v", diags)
	}
	if len(diags[0].Rules) != 2 {
		t.Errorf("want both rules attached, got %v", diags[0].Rules)
	}
}

func TestReportOrderAndString(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1).
p(X, Y) :- e(X).
q(X) :- e(X), X > 3, X < 2.
`))
	if len(rep.Diagnostics) < 2 {
		t.Fatalf("want diagnostics, got %v", rep.Diagnostics)
	}
	for i := 1; i < len(rep.Diagnostics); i++ {
		a, b := rep.Diagnostics[i-1], rep.Diagnostics[i]
		if a.Pos.File == b.Pos.File && a.Pos.Line > b.Pos.Line && b.Pos.IsValid() && a.Pos.IsValid() {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
	s := rep.String()
	if !strings.Contains(s, "error(s)") || !strings.Contains(s, "test.kdb:") {
		t.Errorf("bad report rendering:\n%s", s)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Run(mustProgram(t, `
e(1, 2).
e(3).
orphan(1).
p(X, Y) :- e(X).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`))
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep.Diagnostics, back.Diagnostics) {
		t.Errorf("diagnostics do not round-trip:\n%v\n%v", rep.Diagnostics, back.Diagnostics)
	}
	if rep.Profile != back.Profile {
		t.Errorf("profile does not round-trip: %+v vs %+v", rep.Profile, back.Profile)
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarning, SevError} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatalf("marshal %v: %v", sev, err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != sev {
			t.Errorf("round-trip %v -> %s -> %v", sev, data, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestProfile(t *testing.T) {
	rep := Run(mustProgram(t, `
par(a, b).
sib(a, c).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
reach(X, Y) :- par(X, Y).
reach(X, Y) :- reach(Y, X).
`))
	p := rep.Profile
	if p.EDBPreds != 2 || p.IDBPreds != 2 || p.Rules != 4 {
		t.Errorf("bad counts: %+v", p)
	}
	if p.Nonrecursive != 2 || p.Typed != 1 || p.StronglyLinear != 1 {
		t.Errorf("bad classification: %+v", p)
	}
	if p.RecursiveComponents != 2 {
		t.Errorf("want 2 recursive components, got %+v", p)
	}
	if s := p.String(); !strings.Contains(s, "2 recursive rules") {
		t.Errorf("bad profile string: %s", s)
	}
}

func TestForPred(t *testing.T) {
	rep := Run(mustProgram(t, `
conn(a, b).
reach(X, Y) :- conn(X, Y).
reach(X, Y) :- reach(Y, X).
`))
	diags := rep.ForPred("reach")
	if len(diags) == 0 {
		t.Fatal("want diagnostics for reach")
	}
	for _, d := range diags {
		if d.Subject != "reach" {
			t.Errorf("wrong subject: %+v", d)
		}
	}
}

// TestRunConcurrent runs the suite from many goroutines over the same
// program; the race detector guards the immutability contract.
func TestRunConcurrent(t *testing.T) {
	prog := mustProgram(t, `
par(a, b).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
bad(X, Y) :- par(X).
`)
	var wg sync.WaitGroup
	reports := make([]*Report, 8)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = Run(prog)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0].Diagnostics, reports[i].Diagnostics) {
			t.Fatalf("nondeterministic reports:\n%v\n%v", reports[0].Diagnostics, reports[i].Diagnostics)
		}
	}
}

package analysis

import (
	"fmt"
	"strings"

	"kdb/internal/depgraph"
)

// Profile summarizes the shape of a program: predicate and clause
// counts, plus rule counts per recursion classification (§2.1). The
// classification decides which describe algorithm each predicate gets,
// so the profile tells at a glance how much of a program Algorithm 2
// covers exactly versus how much falls back to the bounded §5.3 mode.
type Profile struct {
	// EDBPreds counts the extensional (stored or declared) predicates.
	EDBPreds int `json:"edb_preds"`
	// IDBPreds counts the predicates defined by rules.
	IDBPreds int `json:"idb_preds"`
	// Rules counts the IDB rules.
	Rules int `json:"rules"`
	// Constraints counts the integrity constraints.
	Constraints int `json:"constraints"`
	// RecursiveComponents counts the SCCs that contain a recursive rule.
	RecursiveComponents int `json:"recursive_components"`
	// Nonrecursive counts the rules that are not recursive.
	Nonrecursive int `json:"nonrecursive_rules"`
	// Nonlinear counts recursive rules with two or more recursive body
	// occurrences.
	Nonlinear int `json:"nonlinear_rules"`
	// Linear counts recursive rules that are linear but not strongly
	// linear (recursion through a mutually dependent predicate).
	Linear int `json:"linear_rules"`
	// StronglyLinear counts recursive rules that are strongly linear but
	// not typed with respect to their head.
	StronglyLinear int `json:"strongly_linear_rules"`
	// Typed counts recursive rules that are strongly linear and typed —
	// the rules Algorithm 2 (§5.2) handles exactly.
	Typed int `json:"typed_rules"`
}

// ProfileOf computes the profile of a program given its dependency
// graph.
func ProfileOf(prog *Program, g *depgraph.Graph) Profile {
	p := Profile{
		EDBPreds:    len(prog.EDB),
		Rules:       len(prog.Rules),
		Constraints: len(prog.Constraints),
	}
	idb := make(map[string]bool)
	for _, r := range prog.Rules {
		idb[r.Head.Pred] = true
		if !g.IsRecursiveRule(r) {
			p.Nonrecursive++
			continue
		}
		switch classifyOne(g, r) {
		case ClassNonlinear:
			p.Nonlinear++
		case ClassLinear:
			p.Linear++
		case ClassStronglyLinear:
			p.StronglyLinear++
		case ClassTyped:
			p.Typed++
		}
	}
	p.IDBPreds = len(idb)
	for _, comp := range g.SCCOrder() {
		recursive := false
		for _, pred := range comp {
			for _, r := range g.RulesFor(pred) {
				if g.IsRecursiveRule(r) {
					recursive = true
				}
			}
		}
		if recursive {
			p.RecursiveComponents++
		}
	}
	return p
}

// String renders the profile as a compact one-line summary.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d EDB + %d IDB predicates, %d rules, %d constraints", p.EDBPreds, p.IDBPreds, p.Rules, p.Constraints)
	rec := p.Rules - p.Nonrecursive
	if rec == 0 {
		b.WriteString("; nonrecursive")
		return b.String()
	}
	fmt.Fprintf(&b, "; %d recursive rules in %d component(s) (", rec, p.RecursiveComponents)
	var parts []string
	if p.Typed > 0 {
		parts = append(parts, fmt.Sprintf("%d typed strongly-linear", p.Typed))
	}
	if p.StronglyLinear > 0 {
		parts = append(parts, fmt.Sprintf("%d strongly-linear untyped", p.StronglyLinear))
	}
	if p.Linear > 0 {
		parts = append(parts, fmt.Sprintf("%d linear", p.Linear))
	}
	if p.Nonlinear > 0 {
		parts = append(parts, fmt.Sprintf("%d nonlinear", p.Nonlinear))
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(")")
	return b.String()
}

package analysis

import (
	"fmt"

	"kdb/internal/obs/sysrel"
	"kdb/internal/term"
)

// reservedAnalyzer enforces the sys_ namespace reservation: the sys_*
// relations are virtual — served by the engine about itself — so user
// clauses may read them but never define them. A fact or rule head in
// the namespace is an error. Body and constraint references are checked
// against the served schema: an unknown sys_ name or a known relation
// used at the wrong arity can never be satisfied, so both are errors
// rather than the undefined analyzer's optimistic warning.
var reservedAnalyzer = &Analyzer{
	Name: "reserved",
	Doc:  "user definitions and malformed references in the reserved sys_ namespace",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		define := func(pos term.Pos, pred, what, rule string) {
			out = append(out, Diagnostic{
				Analyzer: "reserved",
				Severity: SevError,
				Pos:      pos,
				Subject:  pred,
				Message:  fmt.Sprintf("%s defines %s: the sys_ namespace is reserved for the engine's virtual relations", what, pred),
				Rules:    []string{rule},
			})
		}
		use := func(a term.Atom, pos term.Pos, rule string) {
			if !sysrel.IsName(a.Pred) {
				return
			}
			d := sysrel.Lookup(a.Pred)
			if d == nil {
				out = append(out, Diagnostic{
					Analyzer: "reserved",
					Severity: SevError,
					Pos:      pos,
					Subject:  a.Pred,
					Message:  fmt.Sprintf("unknown system relation %s: the sys_ namespace is reserved and no such relation is served", a.Pred),
					Rules:    []string{rule},
				})
				return
			}
			if a.Arity() != d.Arity {
				out = append(out, Diagnostic{
					Analyzer: "reserved",
					Severity: SevError,
					Pos:      pos,
					Subject:  a.Pred,
					Message:  fmt.Sprintf("system relation %s used with arity %d, but its schema is %s", a.Pred, a.Arity(), d.Signature()),
					Rules:    []string{rule},
				})
			}
		}
		for _, f := range pass.Program.Facts {
			if sysrel.IsName(f.Head.Pred) {
				define(f.Pos, f.Head.Pred, "fact", f.String())
			}
		}
		for _, r := range pass.Program.Rules {
			if sysrel.IsName(r.Head.Pred) {
				define(r.Pos, r.Head.Pred, "rule", r.String())
			}
			for _, a := range r.Body {
				use(a, r.Pos, r.String())
			}
		}
		for i, ic := range pass.Program.Constraints {
			var pos term.Pos
			if i < len(pass.Program.ConstraintPos) {
				pos = pass.Program.ConstraintPos[i]
			}
			for _, a := range ic {
				use(a, pos, ":- "+ic.String()+".")
			}
		}
		return out
	},
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kdb/internal/kb"
	"kdb/internal/obs"
)

// getJSON fetches one GET route and decodes the JSON response.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

// denseClosure builds a program whose transitive closure is expensive
// enough for cancellation tests to land mid-evaluation.
func denseClosure(n int) string {
	var prog strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				fmt.Fprintf(&prog, "edge(n%d, n%d).\n", i, j)
			}
		}
	}
	prog.WriteString("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n")
	return prog.String()
}

// TestActivityLifecycle is the acceptance test of the live activity
// layer: an in-flight query appears in /v1/debug/activity, canceling it
// through the endpoint fails the request with 499, and the entry is
// gone once the evaluation unwinds.
func TestActivityLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Engine: kb.EngineNaive})
	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": denseClosure(90)}); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}

	type result struct {
		code int
		body map[string]any
	}
	done := make(chan result, 1)
	go func() {
		code, out := post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve path(X, Y)."})
		done <- result{code, out}
	}()

	// The query must appear in the activity listing while it runs.
	var id float64
	deadline := time.Now().Add(5 * time.Second)
	for id == 0 && time.Now().Before(deadline) {
		select {
		case r := <-done:
			t.Skipf("query finished (%d) before it was observed in flight", r.code)
		default:
		}
		_, out := getJSON(t, ts, "/v1/debug/activity")
		if qs, _ := out["queries"].([]any); len(qs) > 0 {
			q := qs[0].(map[string]any)
			if q["statement"] != "retrieve path(X, Y)." || q["kind"] != "retrieve" || q["tenant"] != "alpha" {
				t.Errorf("activity entry = %v", q)
			}
			id, _ = q["id"].(float64)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if id == 0 {
		t.Fatal("query never appeared in /v1/debug/activity")
	}

	// Cancel it through the debug endpoint: the request fails with 499.
	code, out := post(t, ts, fmt.Sprintf("/v1/debug/activity/%d/cancel", int(id)), nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %v", code, out)
	}
	select {
	case r := <-done:
		if r.code != statusClientClosedRequest {
			t.Errorf("canceled query returned %d, want %d (%v)", r.code, statusClientClosedRequest, r.body)
		} else if got := errCode(t, r.body); got != "canceled" {
			t.Errorf("error code = %q, want canceled", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled query did not return")
	}

	// The entry must disappear once the evaluation unwinds.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, out := getJSON(t, ts, "/v1/debug/activity")
		if qs, _ := out["queries"].([]any); len(qs) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("canceled query still listed after completion")
}

// TestActivityCancelUnknown: canceling a query that is not in flight is
// a structured 404.
func TestActivityCancelUnknown(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, out := post(t, ts, "/v1/debug/activity/12345/cancel", nil)
	if code != http.StatusNotFound || errCode(t, out) != "not-found" {
		t.Errorf("cancel unknown = %d %v, want 404 not-found", code, out)
	}
	code, out = getJSON(t, ts, "/v1/debug/activity")
	if code != http.StatusOK {
		t.Fatalf("activity: %d %v", code, out)
	}
	if qs, ok := out["queries"].([]any); !ok || len(qs) != 0 {
		t.Errorf("idle activity = %v, want empty array", out["queries"])
	}
}

// TestProfileRoute: the profile statement runs on its own route and
// returns both the answers and the structured per-rule rows.
func TestProfileRoute(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	prog := "edge(a, b). edge(b, c).\npath(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n"
	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": prog}); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}
	code, out := post(t, ts, "/v1/kb/alpha/profile", map[string]any{"stmt": "profile path(a, Y)."})
	if code != http.StatusOK {
		t.Fatalf("profile: %d %v", code, out)
	}
	if out["kind"] != "profile" {
		t.Errorf("kind = %v, want profile", out["kind"])
	}
	if got := answers(out); len(got) != 2 {
		t.Errorf("answers = %v, want 2 atoms", got)
	}
	prof, ok := out["profile"].(map[string]any)
	if !ok {
		t.Fatalf("response has no profile object: %v", out)
	}
	rows, _ := prof["rows"].([]any)
	if len(rows) == 0 {
		t.Fatal("profile has no rows")
	}
	var sourceRules int
	for _, r := range rows {
		if r.(map[string]any)["synthetic"] != true {
			sourceRules++
		}
	}
	if sourceRules != 2 {
		t.Errorf("profile has %d source-rule rows, want 2", sourceRules)
	}
	// Route/statement family mismatch stays a 400.
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "profile path(a, Y)."})
	if code != http.StatusBadRequest || errCode(t, out) != "bad-request" {
		t.Errorf("profile on /retrieve = %d %v, want 400", code, out)
	}
}

// TestTraceparentAdoption: a valid W3C traceparent is echoed on the
// response and its trace id reaches the query log; a malformed one is
// ignored.
func TestTraceparentAdoption(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := Config{
		Tracer:   obs.NewTracer(),
		QueryLog: obs.NewQueryLog(&logBuf, 0),
	}
	_, ts, _ := newTestServer(t, cfg)
	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."}); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}

	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	body, _ := json.Marshal(map[string]any{"stmt": "retrieve p(X)."})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/kb/alpha/retrieve", bytes.NewReader(body))
	req.Header.Set("traceparent", header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); got != header {
		t.Errorf("response traceparent = %q, want %q", got, header)
	}
	// The adopted id (low 64 bits of the trace id) must be the one the
	// query log records.
	var rec struct {
		TraceID uint64 `json:"trace_id"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("query log: %v (%q)", err, logBuf.String())
	}
	if rec.TraceID != 0xa3ce929d0e0e4736 {
		t.Errorf("query log trace id = %#x, want %#x", rec.TraceID, uint64(0xa3ce929d0e0e4736))
	}

	// A malformed header is ignored, not echoed.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/kb/alpha/retrieve", bytes.NewReader(body))
	req.Header.Set("traceparent", "zz-bogus")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Errorf("malformed traceparent echoed back: %q", got)
	}
}

// TestHealthzBuildInfo: the liveness body identifies the running build.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{})
	code, out := getJSON(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, out)
	}
	build, ok := out["build"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no build section: %v", out)
	}
	if v, _ := build["go_version"].(string); v == "" {
		t.Errorf("build info missing go_version: %v", build)
	}
	// The same identity is on the metrics registry as kdb_build_info.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kdb_build_info{") {
		t.Error("registry exposition missing kdb_build_info")
	}
}

// Package server exposes knowledge bases over HTTP+JSON: the data
// plane of `kdb serve`. One serve process hosts many named tenants —
// each a separate KB opened lazily under a shared root directory (or
// in memory) — and runs their queries concurrently: reads never block
// each other (the KB read-locks across an evaluation), writes
// serialize per tenant, and every request's context reaches the query
// governor, so a disconnecting client cancels its in-flight query.
//
// Routes (all request/response bodies are JSON):
//
//	POST /v1/kb/{name}/retrieve   data query (statement kind: retrieve)
//	POST /v1/kb/{name}/describe   knowledge query (describe / compare)
//	POST /v1/kb/{name}/explain    why-provenance query
//	POST /v1/kb/{name}/profile    per-rule cost-accounting query
//	POST /v1/kb/{name}/assert     insert one ground fact
//	POST /v1/kb/{name}/retract    remove one ground fact
//	POST /v1/kb/{name}/load       load a program fragment
//	POST /v1/kb/{name}/check      evaluate the integrity constraints
//	GET  /v1/kbs                  list open knowledge bases
//	GET  /v1/debug/activity       in-flight queries across all tenants
//	POST /v1/debug/activity/{id}/cancel   cancel one in-flight query
//	GET  /v1/debug/history        retained metrics history (ring buffer)
//
// plus the obs debug surface (/metrics, /debug/vars, /debug/pprof/*)
// on the same mux.
//
// Query routes honor an incoming W3C `traceparent` header: its trace id
// (low 64 bits) becomes the request's root span id, so the server's
// spans, query-log records, activity entries, and latency exemplars all
// correlate with the caller's distributed trace. The header is echoed
// on the response when adopted.
//
// Query statements may contain $1..$n placeholders; the parsed and
// validated template is cached per tenant (an LRU keyed by statement
// text, invalidated by schema generation), so repeated parameterized
// queries skip the parser. Per-request limits are clamped against the
// server's ceiling — a client may tighten but never loosen its quota.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"kdb/internal/analysis"
	"kdb/internal/fault"
	"kdb/internal/governor"
	"kdb/internal/kb"
	"kdb/internal/obs"
	"kdb/internal/obs/history"
	"kdb/internal/obs/sysrel"
	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

// Config assembles a Server.
type Config struct {
	// Root is the directory holding one store directory per tenant;
	// empty serves independent in-memory KBs (useful for tests and
	// ephemeral workloads).
	Root string
	// MaxOpenKBs bounds the simultaneously open tenants (default 8).
	MaxOpenKBs int
	// IdleTimeout closes tenants unused for this long (default 5m;
	// negative disables idle eviction).
	IdleTimeout time.Duration
	// Ceiling is the per-request resource quota: request limits are
	// clamped against it, so clients may tighten but never loosen it.
	// The zero value leaves requests ungoverned unless they ask.
	Ceiling governor.Limits
	// Engine selects the retrieve engine for every tenant (default
	// semi-naive).
	Engine kb.EngineKind
	// Parallelism is the bottom-up worker count per query (default 1).
	Parallelism int
	// PreparedCacheSize bounds the prepared-statement LRU (default 256).
	PreparedCacheSize int
	// Registry collects the server's and every tenant's metrics; nil
	// creates a private registry.
	Registry *obs.Registry
	// HistoryResolution is the sampling interval of the metrics-history
	// ring buffer behind sys_metric_history and /v1/debug/history
	// (default 5s).
	HistoryResolution time.Duration
	// HistoryRetention is how far back the metrics history reaches
	// (default 10m). Memory is bounded by retention/resolution samples
	// per series.
	HistoryRetention time.Duration
	// Tracer, when set, records a "serve" span tree per request.
	Tracer *obs.Tracer
	// QueryLog, when set, receives one record per query, with the
	// tenant and client fields filled in.
	QueryLog *obs.QueryLog
	// MaxInFlight bounds the requests simultaneously inside the data
	// plane; excess requests are shed with 503 + Retry-After instead of
	// queueing. 0 or negative leaves admission unbounded.
	MaxInFlight int
	// BreakerThreshold is how many consecutive storage-durability
	// failures trip a tenant's circuit breaker into read-only degraded
	// mode (default 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects writes
	// before admitting one probe write (default 5s).
	BreakerCooldown time.Duration
	// RetryAfter is the backoff hint stamped on 429/503 responses as a
	// Retry-After header (default 1s).
	RetryAfter time.Duration
	// BaseContext bounds the server's background work (the tenant
	// janitor): canceling it stops those goroutines even before Close.
	// Nil means the server's lifetime is bounded only by Close.
	BaseContext context.Context
}

// Server is the HTTP data plane over a set of tenant KBs.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	tenants  *Manager
	prepared *preparedCache
	mux      *http.ServeMux

	// inflight (nil when unbounded) sheds requests past MaxInFlight;
	// breakers degrades tenants whose storage keeps failing.
	inflight   *admission
	breakers   *breakers
	retryAfter string // preformatted Retry-After header value, in seconds

	// activity registers every tenant's in-flight queries (the data
	// behind /v1/debug/activity); build identifies the running binary
	// for /healthz and the kdb_build_info gauge.
	activity *obs.ActivityRegistry
	build    obs.BuildInfo

	// history samples the registry on a ticker; it backs every tenant's
	// sys_metric_history relation and /v1/debug/history.
	history *history.Buffer

	requests  func(route, code string) *obs.Counter
	durations func(route string) *obs.Histogram
}

// New builds a Server. When cfg.Root is set it must be an existing
// directory (tenant stores are created beneath it on demand). New is a
// chain root: the context.Background fallback below is the documented
// meaning of a nil cfg.BaseContext, not a lost request context.
//
//kdb:entrypoint
func New(cfg Config) (*Server, error) {
	if cfg.Root != "" {
		fi, err := os.Stat(cfg.Root)
		if err != nil {
			return nil, fmt.Errorf("server: root: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("server: root %s is not a directory", cfg.Root)
		}
	}
	if cfg.MaxOpenKBs <= 0 {
		cfg.MaxOpenKBs = 8
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.Engine == "" {
		cfg.Engine = kb.EngineSemiNaive
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{cfg: cfg, reg: reg}
	s.activity = obs.NewActivityRegistry()
	s.history = history.New(reg, cfg.HistoryResolution, cfg.HistoryRetention)
	s.history.Start()
	s.build = obs.RegisterBuildInfo(reg)
	s.inflight = newAdmission(cfg.MaxInFlight, reg)
	s.breakers = newBreakers(cfg.BreakerThreshold, cfg.BreakerCooldown, reg)
	secs := int(cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	s.retryAfter = strconv.Itoa(secs)
	s.prepared = newPreparedCache(cfg.PreparedCacheSize, reg)
	idle := cfg.IdleTimeout
	if idle < 0 {
		idle = 0
	}
	baseCtx := cfg.BaseContext
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	s.tenants = newManager(baseCtx, cfg.Root, cfg.MaxOpenKBs, idle, s.openKB)

	reg.SetHelp("kdb_server_requests_total", "Served requests by route and status code.")
	reg.SetHelp("kdb_server_request_seconds", "Request latency by route.")
	reg.SetHelp("kdb_server_open_kbs", "Currently open tenant knowledge bases.")
	reg.SetHelp("kdb_server_evictions_total", "Tenant knowledge bases closed by eviction (LRU or idle).")
	reg.SetHelp("kdb_server_inflight", "Requests currently inside the data plane.")
	reg.SetHelp("kdb_server_shed_total", "Requests shed by admission control (503 + Retry-After).")
	reg.SetHelp("kdb_server_breaker_state", "Per-tenant circuit breaker state (0 closed, 1 open, 2 half-open).")
	reg.SetHelp("kdb_server_breaker_transitions_total", "Circuit breaker transitions by tenant and target state.")
	reg.SetHelp("kdb_server_breaker_probes_total", "Recovery probe writes admitted by half-open breakers.")
	s.requests = func(route, code string) *obs.Counter {
		return reg.Counter("kdb_server_requests_total", "route", route, "code", code)
	}
	s.durations = func(route string) *obs.Histogram {
		return reg.Histogram("kdb_server_request_seconds", nil, "route", route)
	}
	openKBs := reg.Gauge("kdb_server_open_kbs")
	evictions := reg.Counter("kdb_server_evictions_total")
	s.tenants.onEvict = evictions.Inc
	s.tenants.onOpenCount = func(n int) { openKBs.Set(float64(n)) }

	mux := obs.DebugMux(reg)
	mux.HandleFunc("GET /v1/kbs", s.handleList)
	mux.HandleFunc("POST /v1/kb/{name}/retrieve", s.admit(s.handleQuery("retrieve")))
	mux.HandleFunc("POST /v1/kb/{name}/describe", s.admit(s.handleQuery("describe")))
	mux.HandleFunc("POST /v1/kb/{name}/explain", s.admit(s.handleQuery("explain")))
	mux.HandleFunc("POST /v1/kb/{name}/profile", s.admit(s.handleQuery("profile")))
	mux.HandleFunc("POST /v1/kb/{name}/assert", s.admit(s.handleMutate(false)))
	mux.HandleFunc("POST /v1/kb/{name}/retract", s.admit(s.handleMutate(true)))
	mux.HandleFunc("POST /v1/kb/{name}/load", s.admit(s.handleLoad))
	mux.HandleFunc("POST /v1/kb/{name}/check", s.admit(s.handleCheck))
	mux.HandleFunc("POST /v1/kb/{name}/checkpoint", s.admit(s.handleCheckpoint))
	mux.HandleFunc("GET /v1/debug/activity", s.handleActivity)
	mux.HandleFunc("POST /v1/debug/activity/{id}/cancel", s.handleActivityCancel)
	mux.HandleFunc("GET /v1/debug/history", s.handleHistory)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux
	return s, nil
}

// openKB builds the KB for one tenant: durable under Root, in-memory
// otherwise, with the server's ceiling, engine, and observability.
func (s *Server) openKB(name string) (*kb.KB, error) {
	if err := fault.Inject(fault.SiteTenantOpen); err != nil {
		return nil, err
	}
	opts := []kb.Option{
		kb.WithQueryLimits(s.cfg.Ceiling),
		kb.WithParallelism(s.cfg.Parallelism),
		kb.WithMetrics(s.reg),
		// Every tenant shares the server's activity registry, so
		// /v1/debug/activity sees the whole process at once.
		kb.WithActivity(s.activity),
		// Likewise the shared history buffer (sys_metric_history) and
		// per-tenant statement statistics (sys_query_stats).
		kb.WithMetricsHistory(s.history),
		kb.WithQueryStats(),
	}
	if s.cfg.Tracer != nil {
		opts = append(opts, kb.WithTracer(s.cfg.Tracer))
	}
	if s.cfg.QueryLog != nil {
		opts = append(opts, kb.WithQueryLog(s.cfg.QueryLog))
	}
	var k *kb.KB
	if s.cfg.Root == "" {
		k = kb.New(opts...)
	} else {
		dir := s.tenants.Dir(name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		k, err = kb.Open(dir, opts...)
		if err != nil {
			return nil, err
		}
	}
	if err := k.SetEngine(s.cfg.Engine); err != nil {
		k.Close()
		return nil, err
	}
	// Every tenant's sys_tenant relation sees the whole server, like
	// /healthz does.
	k.SystemRelations().SetTenants(s.tenantRows)
	return k, nil
}

// tenantRows is the sys_tenant source installed on every tenant KB. It
// runs inside query evaluation — the querying goroutine holds its KB's
// read lock — so it touches only lock-free or internally synchronized
// state: the manager's published view (never m.mu, which Close holds
// while draining queries), the breakers, and each store's own
// durability state (never kb.DurabilityErr, which read-locks the KB).
func (s *Server) tenantRows() []sysrel.TenantInfo {
	open := s.tenants.View()
	seen := make(map[string]bool, len(open))
	out := make([]sysrel.TenantInfo, 0, len(open))
	for name, k := range open {
		seen[name] = true
		st := s.breakers.state(name)
		out = append(out, sysrel.TenantInfo{
			Name:     name,
			Open:     true,
			Degraded: st != "closed",
			Poisoned: k.Store().DurabilityErr() != nil,
		})
	}
	for _, name := range s.breakers.tracked() {
		if seen[name] {
			continue
		}
		st := s.breakers.state(name)
		out = append(out, sysrel.TenantInfo{Name: name, Degraded: st != "closed"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// admit wraps a data-plane handler with admission control: when every
// in-flight slot is taken the request is shed immediately (503 +
// Retry-After) instead of queueing a goroutine behind a saturated
// server.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.inflight == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.inflight.acquire() {
			s.writeError(w, errShed)
			return
		}
		defer s.inflight.release()
		h(w, r)
	}
}

// Handler returns the server's HTTP handler: the API routes plus the
// debug surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server's tenants down: the janitor stops and every
// open KB is closed (waiting for in-flight queries to drain). The
// metrics-history sampler stops last, once no query can reference it.
func (s *Server) Close() error {
	err := s.tenants.Close()
	s.history.Stop()
	return err
}

// maxBodyBytes bounds a request body; a program load is the largest
// legitimate payload.
const maxBodyBytes = 8 << 20

// queryRequest is the body of the retrieve/describe/explain routes.
type queryRequest struct {
	// Stmt is the statement text, possibly with $1..$n placeholders.
	Stmt string `json:"stmt"`
	// Args bind the placeholders, in order: numbers become numeric
	// constants; strings become symbols when they look like identifiers
	// and string constants otherwise; {"sym": s}, {"str": s}, and
	// {"num": x} force an interpretation.
	Args []json.RawMessage `json:"args,omitempty"`
	// Limits tighten the server's quota for this request only.
	Limits *limitsJSON `json:"limits,omitempty"`
	// Client identifies the caller in the query log (the X-KDB-Client
	// header wins when both are set).
	Client string `json:"client,omitempty"`
}

// limitsJSON is the wire form of per-request query limits.
type limitsJSON struct {
	MaxWallMS        int `json:"max_wall_ms,omitempty"`
	MaxFacts         int `json:"max_facts,omitempty"`
	MaxIterations    int `json:"max_iterations,omitempty"`
	MaxTableEntries  int `json:"max_table_entries,omitempty"`
	MaxDescribeNodes int `json:"max_describe_nodes,omitempty"`
	MaxProvenance    int `json:"max_provenance_entries,omitempty"`
}

func (l *limitsJSON) toLimits() governor.Limits {
	return governor.Limits{
		MaxWall:              time.Duration(l.MaxWallMS) * time.Millisecond,
		MaxFacts:             l.MaxFacts,
		MaxIterations:        l.MaxIterations,
		MaxTableEntries:      l.MaxTableEntries,
		MaxDescribeNodes:     l.MaxDescribeNodes,
		MaxProvenanceEntries: l.MaxProvenance,
	}
}

// queryResponse is the body of a successful query route.
type queryResponse struct {
	// Kind is the statement kind actually executed (retrieve, describe,
	// describe-not, possible, compare, explain, …).
	Kind string `json:"kind"`
	// Prepared reports a prepared-statement cache hit.
	Prepared bool `json:"prepared"`
	// Answers renders one answer per line: instantiated subject atoms
	// for a retrieve, derived rules for a describe.
	Answers []string `json:"answers"`
	// Rendered is the full terminal rendering of the result.
	Rendered string `json:"rendered"`
	// Explanation carries the derivation trees of an explain.
	Explanation json.RawMessage `json:"explanation,omitempty"`
	// Profile carries the per-rule cost rows of a profile statement.
	Profile json.RawMessage `json:"profile,omitempty"`
}

// handleQuery serves one query route. The route fixes the statement
// family; a mismatching statement (e.g. a describe POSTed to
// /retrieve) is a 400, so clients cannot smuggle an expensive
// statement past a route-level policy.
func (s *Server) handleQuery(route string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := s.serveQuery(w, r, route)
		s.requests(route, strconv.Itoa(code)).Inc()
		s.durations(route).ObserveDuration(time.Since(start))
	}
}

// serveQuery runs one query request end to end and returns the HTTP
// status it produced.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, route string) int {
	// Chaos hook: inject latency (to hold an admission slot) or an
	// error before any real work happens.
	if err := fault.Inject(fault.SiteRequest); err != nil {
		return s.writeError(w, err)
	}
	name := r.PathValue("name")
	k, release, err := s.tenants.Acquire(name)
	if err != nil {
		return s.writeError(w, err)
	}
	defer release()

	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		return s.writeError(w, err)
	}
	p, hit, err := s.prepared.Get(name, req.Stmt, k)
	if err != nil {
		return s.writeError(w, err)
	}
	if err := checkRoute(route, p.query); err != nil {
		return s.writeError(w, err)
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		return s.writeError(w, err)
	}
	if err := fault.Inject(fault.SitePreparedBind); err != nil {
		return s.writeError(w, err)
	}
	bound, err := parser.BindPlaceholders(p.query, args)
	if err != nil {
		return s.writeError(w, &badRequestError{err})
	}

	// The request context is the cancellation root: a client disconnect
	// cancels the evaluation through the query governor.
	ctx := r.Context()
	ctx = obs.ContextWithClient(ctx, obs.ClientInfo{Tenant: name, Client: clientID(r, req.Client)})
	if req.Limits != nil {
		ctx = kb.ContextWithLimits(ctx, req.Limits.toLimits())
	}
	// A W3C traceparent on the request donates its trace id (the low 64
	// bits) to the serve span, so every downstream record — query log,
	// activity entry, latency exemplar — carries the caller's trace.
	var traceID uint64
	if tp := r.Header.Get("traceparent"); tp != "" {
		if id, ok := obs.ParseTraceparent(tp); ok {
			traceID = id
			w.Header().Set("Traceparent", tp)
		}
	}
	root := s.cfg.Tracer.StartWithID("serve", traceID)
	root.SetStr("route", route)
	root.SetStr("tenant", name)
	ctx = obs.ContextWithSpan(ctx, root)

	res, err := k.ExecContext(ctx, bound)
	s.cfg.Tracer.Finish(root)
	if err != nil {
		return s.writeError(w, err)
	}
	resp := &queryResponse{
		Kind:     queryKind(bound),
		Prepared: hit,
		Answers:  answerLines(res),
		Rendered: res.String(),
	}
	if res.Explanation != nil {
		if b, err := json.Marshal(res.Explanation); err == nil {
			resp.Explanation = b
		}
	}
	if res.Profile != nil {
		if b, err := json.Marshal(res.Profile); err == nil {
			resp.Profile = b
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// clientID resolves the caller identity for the query log.
func clientID(r *http.Request, bodyClient string) string {
	if h := r.Header.Get("X-KDB-Client"); h != "" {
		return h
	}
	return bodyClient
}

// checkRoute verifies the statement family matches the route.
func checkRoute(route string, q parser.Query) error {
	var ok bool
	switch route {
	case "retrieve":
		_, ok = q.(*parser.Retrieve)
	case "describe":
		switch q.(type) {
		case *parser.Describe, *parser.Compare:
			ok = true
		}
	case "explain":
		_, ok = q.(*parser.Explain)
	case "profile":
		_, ok = q.(*parser.Profile)
	}
	if !ok {
		return &badRequestError{fmt.Errorf("statement kind %s does not match route /%s", queryKind(q), route)}
	}
	return nil
}

// queryKind names a parsed statement for responses and span labels.
func queryKind(q parser.Query) string {
	switch s := q.(type) {
	case *parser.Retrieve:
		return "retrieve"
	case *parser.Describe:
		switch {
		case s.Wildcard:
			return "describe-wildcard"
		case s.Subjectless:
			return "possible"
		case len(s.Not) > 0:
			return "describe-not"
		default:
			return "describe"
		}
	case *parser.Compare:
		return "compare"
	case *parser.Explain:
		return "explain"
	case *parser.Profile:
		return "profile"
	default:
		return "unknown"
	}
}

// answerLines extracts one line per answer from an ExecResult, sorted
// for a stable wire shape.
func answerLines(res *kb.ExecResult) []string {
	var out []string
	switch {
	case res.Retrieve != nil:
		var subject term.Atom
		switch q := res.Query.(type) {
		case *parser.Retrieve:
			subject = q.Subject
		case *parser.Profile:
			subject = q.Subject
		default:
			break
		}
		if subject.Pred != "" {
			for _, a := range res.Retrieve.Atoms(subject) {
				out = append(out, a.String())
			}
		}
	case res.Describe != nil:
		for _, f := range res.Describe.Formulas {
			out = append(out, f.String())
		}
	case res.System != "":
		// describe of a sys_* virtual relation: the fixed schema line.
		out = append(out, res.System)
	case res.Explanation != nil:
		for _, tr := range res.Explanation.Trees {
			out = append(out, tr.Fact.String())
		}
	}
	sort.Strings(out)
	return out
}

// mutateRequest is the body of assert/retract.
type mutateRequest struct {
	// Fact is one ground atom in surface syntax, e.g. "takes(ann, db)".
	Fact string `json:"fact"`
}

// mutateResponse is the body of a successful assert/retract.
type mutateResponse struct {
	// Removed reports whether a retract actually removed a fact.
	Removed bool `json:"removed,omitempty"`
	OK      bool `json:"ok"`
}

// handleMutate serves assert (retract=false) and retract (retract=true).
func (s *Server) handleMutate(retract bool) http.HandlerFunc {
	route := "assert"
	if retract {
		route = "retract"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := func() int {
			name := r.PathValue("name")
			k, release, err := s.tenants.Acquire(name)
			if err != nil {
				return s.writeError(w, err)
			}
			defer release()
			var req mutateRequest
			if err := decodeBody(r, &req); err != nil {
				return s.writeError(w, err)
			}
			a, err := parser.ParseAtom(req.Fact)
			if err != nil {
				return s.writeError(w, err)
			}
			if !retract && !a.IsGround() {
				return s.writeError(w, &badRequestError{fmt.Errorf("assert %v: fact is not ground", a)})
			}
			// The breaker gates the write only after request validation:
			// a malformed request should not consume the recovery probe.
			probe, ok := s.breakers.admitWrite(name)
			if !ok {
				return s.writeError(w, &errDegraded{tenant: name})
			}
			if retract {
				removed, err := k.Retract(a)
				s.breakers.record(name, probe, err)
				if err != nil {
					return s.writeError(w, mutateError(err))
				}
				return writeJSON(w, http.StatusOK, &mutateResponse{Removed: removed, OK: true})
			}
			err = k.Assert(a)
			s.breakers.record(name, probe, err)
			if err != nil {
				return s.writeError(w, mutateError(err))
			}
			return writeJSON(w, http.StatusOK, &mutateResponse{OK: true})
		}()
		s.requests(route, strconv.Itoa(code)).Inc()
		s.durations(route).ObserveDuration(time.Since(start))
	}
}

// mutateError classifies a failed assert/retract: a closed KB and a
// storage-durability failure stay 503s (the server's fault, retryable
// elsewhere), everything else (arity mismatch, intensional predicate,
// non-ground fact) is the client's.
func mutateError(err error) error {
	if errors.Is(err, kb.ErrClosed) || errors.Is(err, storage.ErrDurability) {
		return err
	}
	return &badRequestError{err}
}

// loadRequest is the body of /load.
type loadRequest struct {
	// Program is knowledge-base source text: facts, rules, declarations,
	// constraints.
	Program string `json:"program"`
}

// loadResponse is the body of a successful /load.
type loadResponse struct {
	OK    bool `json:"ok"`
	Facts int  `json:"facts"`
	Rules int  `json:"rules"`
}

// handleLoad loads a program fragment into the tenant.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := func() int {
		name := r.PathValue("name")
		k, release, err := s.tenants.Acquire(name)
		if err != nil {
			return s.writeError(w, err)
		}
		defer release()
		var req loadRequest
		if err := decodeBody(r, &req); err != nil {
			return s.writeError(w, err)
		}
		// A load asserts facts, so it is a write for breaker purposes.
		probe, ok := s.breakers.admitWrite(name)
		if !ok {
			return s.writeError(w, &errDegraded{tenant: name})
		}
		err = k.LoadString(req.Program)
		s.breakers.record(name, probe, err)
		if err != nil {
			return s.writeError(w, err)
		}
		return writeJSON(w, http.StatusOK, &loadResponse{OK: true, Facts: k.FactCount(), Rules: len(k.Rules())})
	}()
	s.requests("load", strconv.Itoa(code)).Inc()
	s.durations("load").ObserveDuration(time.Since(start))
}

// checkpointResponse is the body of a successful /checkpoint.
type checkpointResponse struct {
	OK bool `json:"ok"`
}

// handleCheckpoint folds the tenant's WAL into a snapshot on demand.
// Checkpoint doubles as the recovery operation for a degraded tenant —
// it captures the in-RAM state and resets a poisoned log — so it
// bypasses the write breaker and its outcome feeds the breaker
// directly: success closes it, a durability failure (re-)trips it.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := func() int {
		name := r.PathValue("name")
		k, release, err := s.tenants.Acquire(name)
		if err != nil {
			return s.writeError(w, err)
		}
		defer release()
		ctx := obs.ContextWithClient(r.Context(), obs.ClientInfo{Tenant: name, Client: clientID(r, "")})
		err = k.CheckpointContext(ctx)
		s.breakers.recordRecovery(name, err)
		if err != nil {
			return s.writeError(w, err)
		}
		return writeJSON(w, http.StatusOK, &checkpointResponse{OK: true})
	}()
	s.requests("checkpoint", strconv.Itoa(code)).Inc()
	s.durations("checkpoint").ObserveDuration(time.Since(start))
}

// checkResponse is the body of /check.
type checkResponse struct {
	OK         bool     `json:"ok"`
	Violations []string `json:"violations,omitempty"`
}

// handleCheck evaluates the tenant's integrity constraints.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := func() int {
		name := r.PathValue("name")
		k, release, err := s.tenants.Acquire(name)
		if err != nil {
			return s.writeError(w, err)
		}
		defer release()
		ctx := obs.ContextWithClient(r.Context(), obs.ClientInfo{Tenant: name, Client: clientID(r, "")})
		violations, err := k.CheckConstraintsContext(ctx)
		if err != nil {
			return s.writeError(w, err)
		}
		return writeJSON(w, http.StatusOK, &checkResponse{OK: len(violations) == 0, Violations: violations})
	}()
	s.requests("check", strconv.Itoa(code)).Inc()
	s.durations("check").ObserveDuration(time.Since(start))
}

// kbInfo is one entry of the /v1/kbs listing.
type kbInfo struct {
	Name string `json:"name"`
	Open bool   `json:"open"`
}

// handleList lists knowledge bases: every open tenant, plus (with a
// durable root) every tenant directory on disk.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	seen := make(map[string]bool)
	var out []kbInfo
	for _, name := range s.tenants.Open() {
		seen[name] = true
		out = append(out, kbInfo{Name: name, Open: true})
	}
	if s.cfg.Root != "" {
		if entries, err := os.ReadDir(s.cfg.Root); err == nil {
			for _, e := range entries {
				if e.IsDir() && validName(e.Name()) && !seen[e.Name()] {
					out = append(out, kbInfo{Name: e.Name()})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"kbs": out})
}

// activityResponse is the body of GET /v1/debug/activity.
type activityResponse struct {
	Queries []obs.ActivityInfo `json:"queries"`
}

// handleActivity lists the queries currently in flight across every
// tenant — statement, kind, tenant/client, elapsed time, stats-so-far —
// the serve counterpart of pg_stat_activity.
func (s *Server) handleActivity(w http.ResponseWriter, r *http.Request) {
	snap := s.activity.Snapshot()
	if snap == nil {
		snap = []obs.ActivityInfo{}
	}
	writeJSON(w, http.StatusOK, &activityResponse{Queries: snap})
}

// handleActivityCancel cancels one in-flight query by registry id: the
// entry's cancel func fires, the governor stops the evaluation, and the
// canceled request itself fails with 499. 404 when no such query is in
// flight (it may have finished between the list and the cancel).
func (s *Server) handleActivityCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, &badRequestError{fmt.Errorf("activity id %q: %w", r.PathValue("id"), err)})
		return
	}
	if !s.activity.Cancel(id) {
		writeJSON(w, http.StatusNotFound, &errorBody{Error: errorDetail{
			Code:    "not-found",
			Message: fmt.Sprintf("no in-flight query with id %d", id),
		}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "id": id})
}

// healthTenant is one tenant's entry in the health report.
type healthTenant struct {
	// Open reports whether the tenant's KB is currently open (an
	// evicted tenant can still carry breaker state).
	Open bool `json:"open"`
	// Breaker is the circuit-breaker state: closed, open, or half-open.
	Breaker string `json:"breaker"`
	// Degraded mirrors Breaker != closed: writes are rejected, reads
	// keep serving off the in-RAM relations.
	Degraded bool `json:"degraded,omitempty"`
	// Poisoned reports a sticky WAL failure; only a successful
	// checkpoint clears it.
	Poisoned bool `json:"poisoned,omitempty"`
}

// healthResponse is the body of /healthz.
type healthResponse struct {
	OK      bool                    `json:"ok"`
	State   string                  `json:"state"` // serving | draining
	Build   *obs.BuildInfo          `json:"build,omitempty"`
	Tenants map[string]healthTenant `json:"tenants,omitempty"`
}

// handleHealthz is the liveness probe: 200 while the server accepts
// work — even with degraded tenants, since the rest keep serving —
// and 503 once the tenant manager has shut down. The body details
// per-tenant breaker and WAL-poison state for operators and probes
// that want more than the status code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.tenants.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, &healthResponse{State: "draining"})
		return
	}
	resp := &healthResponse{OK: true, State: "serving", Build: &s.build}
	open := s.tenants.Snapshot()
	if len(open) > 0 || len(s.breakers.tracked()) > 0 {
		resp.Tenants = make(map[string]healthTenant)
	}
	for name, k := range open {
		st := s.breakers.state(name)
		resp.Tenants[name] = healthTenant{
			Open:     true,
			Breaker:  st,
			Degraded: st != "closed",
			Poisoned: k.DurabilityErr() != nil,
		}
	}
	for _, name := range s.breakers.tracked() {
		if _, ok := resp.Tenants[name]; ok {
			continue
		}
		st := s.breakers.state(name)
		resp.Tenants[name] = healthTenant{Breaker: st, Degraded: st != "closed"}
	}
	writeJSON(w, http.StatusOK, resp)
}

// historyResponse is the /v1/debug/history body: the buffer's shape
// plus every retained series, samples oldest first with ages relative
// to the request.
type historyResponse struct {
	ResolutionSeconds float64         `json:"resolution_seconds"`
	RetentionSeconds  float64         `json:"retention_seconds"`
	DroppedSeries     int             `json:"dropped_series,omitempty"`
	Series            []historySeries `json:"series"`
}

type historySeries struct {
	Name    string          `json:"name"`
	Type    string          `json:"type"`
	Samples []historySample `json:"samples"`
}

type historySample struct {
	AgeSeconds float64 `json:"age_seconds"`
	Value      float64 `json:"value"`
}

// handleHistory serves the retained metrics history — the same data
// sys_metric_history exposes to queries, shaped for dashboards and
// `kdb top` sparklines.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := &historyResponse{
		ResolutionSeconds: s.history.Resolution().Seconds(),
		RetentionSeconds:  s.history.Retention().Seconds(),
		DroppedSeries:     s.history.Dropped(),
		Series:            []historySeries{},
	}
	for _, series := range s.history.Snapshot() {
		hs := historySeries{Name: series.Name, Type: series.Type}
		for _, sm := range series.Samples {
			age := now.Sub(sm.At).Seconds()
			if age < 0 {
				age = 0
			}
			hs.Samples = append(hs.Samples, historySample{AgeSeconds: age, Value: sm.Value})
		}
		resp.Series = append(resp.Series, hs)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIndex names the API surface at the root.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, `kdb serve:
  GET  /v1/kbs
  POST /v1/kb/{name}/retrieve   {"stmt": "retrieve p($1).", "args": ["a"]}
  POST /v1/kb/{name}/describe
  POST /v1/kb/{name}/explain
  POST /v1/kb/{name}/profile
  POST /v1/kb/{name}/assert     {"fact": "p(a)"}
  POST /v1/kb/{name}/retract    {"fact": "p(a)"}
  POST /v1/kb/{name}/load       {"program": "p(a). q(X) :- p(X)."}
  POST /v1/kb/{name}/check
  POST /v1/kb/{name}/checkpoint
  GET  /v1/debug/activity
  POST /v1/debug/activity/{id}/cancel
  GET  /v1/debug/history
  GET  /healthz
  /metrics  /debug/vars  /debug/pprof/
`)
}

// decodeBody reads one JSON body into dst, rejecting trailing data.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &badRequestError{fmt.Errorf("request body: %w", err)}
	}
	return nil
}

// decodeArgs converts JSON argument values into terms.
func decodeArgs(raw []json.RawMessage) ([]term.Term, error) {
	out := make([]term.Term, len(raw))
	for i, m := range raw {
		t, err := decodeArg(m)
		if err != nil {
			return nil, &badRequestError{fmt.Errorf("args[%d]: %w", i, err)}
		}
		out[i] = t
	}
	return out, nil
}

// decodeArg maps one JSON value to a term: numbers become numeric
// constants; strings become symbols when identifier-shaped and string
// constants otherwise; {"sym"|"str"|"num": v} forces a kind.
func decodeArg(m json.RawMessage) (term.Term, error) {
	var v any
	if err := json.Unmarshal(m, &v); err != nil {
		return term.Term{}, err
	}
	switch x := v.(type) {
	case float64:
		return term.Num(x), nil
	case string:
		if isSymbolName(x) {
			return term.Sym(x), nil
		}
		return term.Str(x), nil
	case map[string]any:
		if len(x) != 1 {
			return term.Term{}, fmt.Errorf("want exactly one of sym/str/num, got %d keys", len(x))
		}
		for k, val := range x {
			switch k {
			case "sym":
				s, ok := val.(string)
				if !ok || !isSymbolName(s) {
					return term.Term{}, fmt.Errorf("sym wants an identifier-shaped string")
				}
				return term.Sym(s), nil
			case "str":
				s, ok := val.(string)
				if !ok {
					return term.Term{}, fmt.Errorf("str wants a string")
				}
				return term.Str(s), nil
			case "num":
				n, ok := val.(float64)
				if !ok {
					return term.Term{}, fmt.Errorf("num wants a number")
				}
				return term.Num(n), nil
			}
		}
		return term.Term{}, fmt.Errorf("unknown argument form (want sym/str/num)")
	default:
		return term.Term{}, fmt.Errorf("unsupported argument type %T (want number, string, or {sym|str|num: v})", v)
	}
}

// isSymbolName reports whether s is a lower-case identifier that the
// parser would read back as a symbolic constant.
func isSymbolName(s string) bool {
	if s == "" || parser.IsReserved(s) {
		return false
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}

// badRequestError marks a client error mapped to 400.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// errorBody is the structured error envelope every failing route
// returns.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	// Code classifies the failure: bad-request, parse, analysis, limit,
	// canceled, deadline, closed, overloaded, not-found, panic, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Limit details a breached resource quota (code "limit").
	Limit *limitDetail `json:"limit,omitempty"`
	// Diagnostics carry the analyzer findings of a rejected load
	// (code "analysis").
	Diagnostics []string `json:"diagnostics,omitempty"`
}

type limitDetail struct {
	Kind string `json:"kind"`
	Max  int64  `json:"max"`
}

// statusClientClosedRequest is nginx's conventional status for a
// client that disconnected before the response; there is no standard
// code for it.
const statusClientClosedRequest = 499

// writeError maps an error to its HTTP status and structured body,
// returning the status.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	status := http.StatusInternalServerError
	detail := errorDetail{Code: "internal", Message: err.Error()}

	var le *governor.LimitError
	var pe *governor.PanicError
	var ae *analysis.Error
	var pse *parser.Error
	var bad *badRequestError
	var badName *errBadName
	var degraded *errDegraded
	switch {
	case errors.As(err, &le):
		status = http.StatusTooManyRequests
		detail.Code = "limit"
		detail.Limit = &limitDetail{Kind: string(le.Kind), Max: le.Limit}
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		detail.Code = "deadline"
	case errors.Is(err, governor.ErrCanceled), errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
		detail.Code = "canceled"
	case errors.As(err, &ae):
		status = http.StatusUnprocessableEntity
		detail.Code = "analysis"
		for _, d := range ae.Diags {
			detail.Diagnostics = append(detail.Diagnostics, d.String())
		}
	case errors.As(err, &pse):
		status = http.StatusBadRequest
		detail.Code = "parse"
	case errors.As(err, &bad):
		status = http.StatusBadRequest
		detail.Code = "bad-request"
	case errors.As(err, &badName):
		status = http.StatusNotFound
		detail.Code = "not-found"
	case errors.Is(err, kb.ErrClosed), errors.Is(err, errManagerClosed):
		status = http.StatusServiceUnavailable
		detail.Code = "closed"
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		detail.Code = "overloaded"
	case errors.As(err, &degraded):
		status = http.StatusServiceUnavailable
		detail.Code = "degraded"
	case errors.Is(err, storage.ErrDurability), errors.Is(err, fault.ErrInjected):
		// The write may or may not have reached stable storage; the
		// client's request was fine. 503 tells it to retry elsewhere
		// or later, and the breaker meanwhile walls off the tenant.
		status = http.StatusServiceUnavailable
		detail.Code = "storage"
	case errors.As(err, &pe):
		status = http.StatusInternalServerError
		detail.Code = "panic"
		// The stack stays server-side; the message alone identifies the
		// failure to the client.
		detail.Message = pe.Error()
	}
	// Backpressure statuses carry a Retry-After hint so well-behaved
	// clients back off instead of hammering a saturated or degraded
	// server.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfter)
	}
	return writeJSON(w, status, &errorBody{Error: detail})
}

// writeJSON writes one JSON response, returning the status for the
// request metrics.
func writeJSON(w http.ResponseWriter, status int, body any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
	return status
}

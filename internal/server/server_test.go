package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kdb/internal/governor"
	"kdb/internal/kb"
	"kdb/internal/obs"
)

// newTestServer builds a Server and an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, cfg.Registry
}

// post sends one JSON request and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

// errCode extracts the structured error code from a failing response.
func errCode(t *testing.T, out map[string]any) string {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", out)
	}
	code, _ := e["code"].(string)
	return code
}

// answers extracts the answers array of a query response.
func answers(out map[string]any) []string {
	raw, _ := out["answers"].([]any)
	var got []string
	for _, a := range raw {
		got = append(got, a.(string))
	}
	return got
}

const teachingProgram = `
	student(ann, math, 3.9).
	student(bob, cs, 3.2).
	student(eve, cs, 3.8).
	takes(ann, databases).
	takes(bob, databases).
	honor(X) :- student(X, M, G), G > 3.7.
`

func TestQueryLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": teachingProgram})
	if code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}

	// A parameterized retrieve: first execution parses, second hits the
	// prepared cache.
	q := map[string]any{"stmt": "retrieve honor($1).", "args": []any{"ann"}}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", q)
	if code != http.StatusOK {
		t.Fatalf("retrieve: %d %v", code, out)
	}
	if got := answers(out); len(got) != 1 || got[0] != "honor(ann)" {
		t.Errorf("retrieve answers = %v", got)
	}
	if out["prepared"] != false {
		t.Errorf("first execution should be a cache miss, got %v", out["prepared"])
	}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", q)
	if code != http.StatusOK || out["prepared"] != true {
		t.Errorf("second execution should be a cache hit: %d %v", code, out)
	}

	// Describe and explain run on their own routes.
	code, out = post(t, ts, "/v1/kb/alpha/describe", map[string]any{"stmt": "describe honor(X)."})
	if code != http.StatusOK {
		t.Fatalf("describe: %d %v", code, out)
	}
	if got := answers(out); len(got) == 0 || !strings.Contains(got[0], "student") {
		t.Errorf("describe answers = %v", got)
	}
	code, out = post(t, ts, "/v1/kb/alpha/explain", map[string]any{"stmt": "explain honor(ann)."})
	if code != http.StatusOK {
		t.Fatalf("explain: %d %v", code, out)
	}
	if out["explanation"] == nil {
		t.Error("explain response has no explanation")
	}

	// Assert a fact for an existing predicate: visible immediately, and
	// the prepared statement stays valid (no schema change).
	code, out = post(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": "student(joe, math, 3.95)"})
	if code != http.StatusOK {
		t.Fatalf("assert: %d %v", code, out)
	}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve honor($1).", "args": []any{"joe"}})
	if code != http.StatusOK || out["prepared"] != true {
		t.Fatalf("retrieve after assert: %d %v (want a prepared hit — fact asserts must not invalidate)", code, out)
	}
	if got := answers(out); len(got) != 1 || got[0] != "honor(joe)" {
		t.Errorf("asserted fact not derivable: %v", got)
	}

	// Retract reports whether the fact was present.
	code, out = post(t, ts, "/v1/kb/alpha/retract", map[string]any{"fact": "takes(bob, databases)"})
	if code != http.StatusOK || out["removed"] != true {
		t.Errorf("retract: %d %v", code, out)
	}
	code, out = post(t, ts, "/v1/kb/alpha/retract", map[string]any{"fact": "takes(bob, databases)"})
	if code != http.StatusOK || out["removed"] == true {
		t.Errorf("second retract should remove nothing: %d %v", code, out)
	}
}

func TestPreparedInvalidationOnLoad(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{})
	post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a). p(b)."})

	q := map[string]any{"stmt": "retrieve p(X)."}
	post(t, ts, "/v1/kb/alpha/retrieve", q)
	if _, out := post(t, ts, "/v1/kb/alpha/retrieve", q); out["prepared"] != true {
		t.Fatalf("want a hit before the load: %v", out)
	}

	// Loading a program bumps the schema generation; the cached entry is
	// stale and must be re-validated.
	post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "q(X) :- p(X)."})
	if _, out := post(t, ts, "/v1/kb/alpha/retrieve", q); out["prepared"] != false {
		t.Fatalf("want a miss after the load: %v", out)
	}
	if _, out := post(t, ts, "/v1/kb/alpha/retrieve", q); out["prepared"] != true {
		t.Fatalf("want a hit after re-validation: %v", out)
	}

	hits := reg.Counter("kdb_server_prepared_total", "result", "hit").Value()
	misses := reg.Counter("kdb_server_prepared_total", "result", "miss").Value()
	if hits < 2 || misses < 2 {
		t.Errorf("prepared metrics: hits=%d misses=%d, want >= 2 each", hits, misses)
	}
	if n := s.prepared.Len(); n != 1 {
		t.Errorf("cache entries = %d, want 1 (stale entry replaced)", n)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{
		Ceiling: governor.Limits{MaxFacts: 50},
	})
	post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."})

	code, out := post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(."})
	if code != http.StatusBadRequest || errCode(t, out) != "parse" {
		t.Errorf("parse error: %d %v", code, out)
	}

	code, out = post(t, ts, "/v1/kb/NOPE/retrieve", map[string]any{"stmt": "retrieve p(X)."})
	if code != http.StatusNotFound || errCode(t, out) != "not-found" {
		t.Errorf("bad tenant name: %d %v", code, out)
	}

	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "describe p(X)."})
	if code != http.StatusBadRequest || errCode(t, out) != "bad-request" {
		t.Errorf("route mismatch: %d %v", code, out)
	}

	// An unsafe rule is rejected by the analyzer with diagnostics.
	code, out = post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "bad(X, Y) :- p(X)."})
	if code != http.StatusUnprocessableEntity || errCode(t, out) != "analysis" {
		t.Errorf("analysis error: %d %v", code, out)
	}
	if e := out["error"].(map[string]any); e["diagnostics"] == nil {
		t.Errorf("analysis error carries no diagnostics: %v", out)
	}

	// A derived-fact blowup breaches the server ceiling: structured 429.
	var prog strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&prog, "edge(n%d, n%d).\n", i, i+1)
		fmt.Fprintf(&prog, "edge(n%d, m%d).\n", i, i)
	}
	prog.WriteString("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n")
	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": prog.String()}); code != http.StatusOK {
		t.Fatalf("load graph: %d %v", code, out)
	}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve path(X, Y)."})
	if code != http.StatusTooManyRequests || errCode(t, out) != "limit" {
		t.Fatalf("limit breach: %d %v", code, out)
	}
	lim := out["error"].(map[string]any)["limit"].(map[string]any)
	if lim["kind"] != "facts" || lim["max"] != float64(50) {
		t.Errorf("limit detail = %v", lim)
	}

	// A request may tighten but never loosen the ceiling.
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt":   "retrieve path(X, Y).",
		"limits": map[string]any{"max_facts": 1000000},
	})
	if code != http.StatusTooManyRequests {
		t.Errorf("loosening the ceiling must not work: %d %v", code, out)
	}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt":   "retrieve path(X, Y).",
		"limits": map[string]any{"max_facts": 5},
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("tightened request: %d %v", code, out)
	}
	lim = out["error"].(map[string]any)["limit"].(map[string]any)
	if lim["max"] != float64(5) {
		t.Errorf("tightened limit detail = %v (want the request's bound)", lim)
	}
}

// TestCanceledClientStopsQuery verifies the request context reaches
// the query governor: when the client disconnects, the evaluation
// stops with a canceled reason, visible in the query metrics.
func TestCanceledClientStopsQuery(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{Engine: kb.EngineNaive})

	// A dense transitive closure: expensive enough that cancellation
	// lands mid-evaluation under the naive engine.
	const n = 90
	var prog strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				fmt.Fprintf(&prog, "edge(n%d, n%d).\n", i, j)
			}
		}
	}
	prog.WriteString("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n")
	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": prog.String()}); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"stmt": "retrieve path(X, Y)."})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/kb/alpha/retrieve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Skip("query finished before the cancel landed; nothing to observe")
	}

	// The handler observes the canceled evaluation asynchronously from
	// the client's error; poll briefly for the metric.
	stops := reg.Counter("kdb_query_stops_total", "reason", "canceled")
	deadline := time.Now().Add(5 * time.Second)
	for stops.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if stops.Value() == 0 {
		t.Fatal("no canceled stop recorded: the client disconnect did not reach the governor")
	}
}

// TestConcurrentClients is the acceptance workload: 64 concurrent
// clients mixing retrieve, assert, and explain against two tenants of
// one serve process, with the race detector watching (the CI race job
// includes this package).
func TestConcurrentClients(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{})
	for _, tenant := range []string{"alpha", "beta"} {
		if code, out := post(t, ts, "/v1/kb/"+tenant+"/load",
			map[string]any{"program": fmt.Sprintf("owner(%s). p(seed). q(X) :- p(X).", tenant)}); code != http.StatusOK {
			t.Fatalf("load %s: %d %v", tenant, code, out)
		}
	}

	const clients = 64
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "alpha"
			other := "beta"
			if c%2 == 1 {
				tenant, other = other, tenant
			}
			for i := 0; i < 8; i++ {
				switch i % 3 {
				case 0:
					code, out := post(t, ts, "/v1/kb/"+tenant+"/assert",
						map[string]any{"fact": fmt.Sprintf("p(c%d_%d)", c, i)})
					if code != http.StatusOK {
						errc <- fmt.Errorf("assert: %d %v", code, out)
						return
					}
				case 1:
					code, out := post(t, ts, "/v1/kb/"+tenant+"/retrieve",
						map[string]any{"stmt": "retrieve owner($1).", "args": []any{tenant}})
					if code != http.StatusOK {
						errc <- fmt.Errorf("retrieve: %d %v", code, out)
						return
					}
					if got := answers(out); len(got) != 1 {
						errc <- fmt.Errorf("tenant %s sees %v for its own owner fact", tenant, got)
						return
					}
					// Isolation: the other tenant's owner fact must not leak.
					code, out = post(t, ts, "/v1/kb/"+tenant+"/retrieve",
						map[string]any{"stmt": "retrieve owner($1).", "args": []any{other}})
					if code != http.StatusOK {
						errc <- fmt.Errorf("retrieve other: %d %v", code, out)
						return
					}
					if got := answers(out); len(got) != 0 {
						errc <- fmt.Errorf("tenant %s sees %s's facts: %v", tenant, other, got)
						return
					}
				case 2:
					code, out := post(t, ts, "/v1/kb/"+tenant+"/explain",
						map[string]any{"stmt": "explain q(seed)."})
					if code != http.StatusOK {
						errc <- fmt.Errorf("explain: %d %v", code, out)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The parameterized retrieve repeats across clients: the prepared
	// cache must show hits on /metrics.
	if hits := reg.Counter("kdb_server_prepared_total", "result", "hit").Value(); hits == 0 {
		t.Error("no prepared-statement cache hits under the concurrent workload")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), `kdb_server_prepared_total{result="hit"}`) {
		t.Error("/metrics does not expose the prepared-statement hit counter")
	}
	if !strings.Contains(string(text), `kdb_server_requests_total`) {
		t.Error("/metrics does not expose the request counter")
	}
}

func TestDurableTenantsAndEviction(t *testing.T) {
	root := t.TempDir()
	_, ts, reg := newTestServer(t, Config{Root: root, MaxOpenKBs: 2})

	for _, tenant := range []string{"a", "b", "c"} {
		code, out := post(t, ts, "/v1/kb/"+tenant+"/assert", map[string]any{"fact": "home(" + tenant + ")"})
		if code != http.StatusOK {
			t.Fatalf("assert %s: %d %v", tenant, code, out)
		}
	}
	// Opening c exceeded the bound: the LRU tenant (a) was evicted.
	if evicted := reg.Counter("kdb_server_evictions_total").Value(); evicted != 1 {
		t.Errorf("evictions = %d, want 1", evicted)
	}

	// The listing shows open and on-disk tenants.
	resp, err := http.Get(ts.URL + "/v1/kbs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		KBs []struct {
			Name string `json:"name"`
			Open bool   `json:"open"`
		} `json:"kbs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	open := make(map[string]bool)
	for _, e := range list.KBs {
		open[e.Name] = e.Open
	}
	if len(list.KBs) != 3 || open["a"] || !open["b"] || !open["c"] {
		t.Errorf("listing = %v", list.KBs)
	}

	// An evicted tenant reopens from its store: the fact survived.
	code, out := post(t, ts, "/v1/kb/a/retrieve", map[string]any{"stmt": "retrieve home(X)."})
	if code != http.StatusOK {
		t.Fatalf("reopen a: %d %v", code, out)
	}
	if got := answers(out); len(got) != 1 || got[0] != "home(a)" {
		t.Errorf("reopened tenant lost its fact: %v", got)
	}
}

func TestManagerOverloadAndClose(t *testing.T) {
	m := newManager(context.Background(), "", 1, 0, func(string) (*kb.KB, error) { return kb.New(), nil })
	_, release1, err := m.Acquire("one")
	if err != nil {
		t.Fatal(err)
	}
	// The only slot is pinned: a second tenant cannot open.
	if _, _, err := m.Acquire("two"); err != ErrOverloaded {
		t.Fatalf("busy server: err = %v, want ErrOverloaded", err)
	}
	release1()
	// Idle now: the second tenant evicts the first.
	_, release2, err := m.Acquire("two")
	if err != nil {
		t.Fatal(err)
	}
	release2()
	if got := m.Open(); len(got) != 1 || got[0] != "two" {
		t.Errorf("open tenants = %v", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Acquire("three"); err != errManagerClosed {
		t.Errorf("acquire after close: %v", err)
	}
}

func TestValidName(t *testing.T) {
	for _, name := range []string{"a", "tenant-1", "x_y", strings.Repeat("a", 64)} {
		if !validName(name) {
			t.Errorf("validName(%q) = false", name)
		}
	}
	for _, name := range []string{"", "A", "a.b", "a/b", "..", "a b", strings.Repeat("a", 65)} {
		if validName(name) {
			t.Errorf("validName(%q) = true", name)
		}
	}
}

// TestServeSpanParenting checks the server's "serve" root span adopts
// the KB's query span as a child, so one trace covers the whole
// request.
func TestServeSpanParenting(t *testing.T) {
	tracer := obs.NewTracer()
	var mu sync.Mutex
	var roots []*obs.Span
	tracer.OnFinish(func(sp *obs.Span) {
		mu.Lock()
		roots = append(roots, sp)
		mu.Unlock()
	})
	_, ts, _ := newTestServer(t, Config{Tracer: tracer})
	post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."})
	if code, out := post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(X)."}); code != http.StatusOK {
		t.Fatalf("retrieve: %d %v", code, out)
	}
	mu.Lock()
	defer mu.Unlock()
	var serve *obs.Span
	for _, r := range roots {
		if r.Name() == "serve" {
			serve = r
		}
	}
	if serve == nil {
		t.Fatalf("no serve root span finished (got %d roots)", len(roots))
	}
	var query *obs.Span
	for _, c := range serve.Children() {
		if c.Name() == "query" {
			query = c
		}
	}
	if query == nil {
		t.Fatal("serve span has no query child: the KB did not parent under the request span")
	}
}

func TestArgumentDecoding(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts, "/v1/kb/alpha/load", map[string]any{
		"program": `name(w1, "Ann Smith"). score(w1, 4).`,
	})
	// A quoted string constant needs the {"str": ...} form (or any
	// non-identifier shape); numbers pass as JSON numbers.
	code, out := post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt": "retrieve name(X, $1).",
		"args": []any{map[string]any{"str": "Ann Smith"}},
	})
	if code != http.StatusOK {
		t.Fatalf("str arg: %d %v", code, out)
	}
	if got := answers(out); len(got) != 1 {
		t.Errorf("str arg answers = %v", got)
	}
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt": "retrieve score(X, $1).",
		"args": []any{4},
	})
	if code != http.StatusOK {
		t.Fatalf("num arg: %d %v", code, out)
	}
	if got := answers(out); len(got) != 1 {
		t.Errorf("num arg answers = %v", got)
	}
	// A variable-shaped argument cannot be injected: "X" is not an
	// identifier-shaped symbol, so it becomes a string constant and
	// matches nothing (no accidental wildcard).
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt": "retrieve score(X, $1).",
		"args": []any{"X"},
	})
	if code != http.StatusOK {
		t.Fatalf("injected var: %d %v", code, out)
	}
	if got := answers(out); len(got) != 0 {
		t.Errorf("variable-shaped argument behaved as a wildcard: %v", got)
	}
	// Bad argument arity is a 400.
	code, out = post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt": "retrieve score(X, $1).",
	})
	if code != http.StatusBadRequest {
		t.Errorf("missing args: %d %v", code, out)
	}
}

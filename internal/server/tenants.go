package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kdb/internal/kb"
)

// ErrOverloaded is returned by Acquire when the open-KB bound is
// reached and every open knowledge base is busy serving requests, so
// none can be evicted. The server maps it to 503.
var ErrOverloaded = errors.New("server: too many open knowledge bases")

// errManagerClosed is returned by Acquire after Close.
var errManagerClosed = errors.New("server: manager is closed")

// tenant is one named knowledge base with its usage bookkeeping.
type tenant struct {
	name string
	k    *kb.KB
	// refs counts requests currently inside the KB; only a tenant with
	// refs == 0 may be evicted.
	refs int
	// lastUsed is when the last request released the tenant.
	lastUsed time.Time
}

// Manager owns the server's knowledge bases: one per tenant name,
// opened lazily on first use, evicted when idle or when the open-KB
// bound is exceeded. All methods are safe for concurrent use.
type Manager struct {
	// root is the directory holding one store directory per tenant;
	// empty means every tenant is an independent in-memory KB.
	root string
	// maxOpen bounds the number of simultaneously open KBs.
	maxOpen int
	// idle is how long an unused KB stays open; 0 disables the janitor.
	idle time.Duration
	// newKB builds the KB for a tenant (options, engine, ceiling).
	newKB func(name string) (*kb.KB, error)
	// onEvict observes every eviction (metrics); may be nil.
	onEvict func()
	// onOpenCount observes the open-KB count after each change; may be nil.
	onOpenCount func(n int)

	// baseCtx bounds the manager's background work: the janitor exits
	// when it is canceled, even if Close is never reached.
	baseCtx context.Context

	mu sync.Mutex
	//kdb:guarded-by mu
	tenants map[string]*tenant
	//kdb:guarded-by mu
	closed  bool
	stop    chan struct{}
	janitor sync.WaitGroup

	// view is a lock-free copy of the open-tenant set, republished on
	// every change. It exists for readers that must not take m.mu — the
	// sys_tenant source runs inside query evaluation, and Close holds
	// m.mu while draining in-flight queries, so a Snapshot there would
	// deadlock shutdown.
	view atomic.Pointer[map[string]*kb.KB]
}

// newManager builds a Manager; newKB opens or creates the KB for a
// tenant name (the manager serializes calls to it per name). ctx
// bounds the janitor goroutine's lifetime alongside Close.
func newManager(ctx context.Context, root string, maxOpen int, idle time.Duration, newKB func(string) (*kb.KB, error)) *Manager {
	m := &Manager{
		root:    root,
		maxOpen: maxOpen,
		idle:    idle,
		newKB:   newKB,
		baseCtx: ctx,
		tenants: make(map[string]*tenant),
		stop:    make(chan struct{}),
	}
	if idle > 0 {
		m.janitor.Add(1)
		go m.runJanitor()
	}
	return m
}

// validName reports whether a tenant name is acceptable: nonempty,
// at most 64 bytes, lower-case letters, digits, '_' and '-' only. The
// alphabet keeps names safe as path components (no separators, no "..")
// and as metric label values.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// errBadName reports an invalid tenant name (mapped to 404).
type errBadName struct{ name string }

func (e *errBadName) Error() string {
	return fmt.Sprintf("server: invalid knowledge-base name %q (want [a-z0-9_-]{1,64})", e.name)
}

// Acquire returns the tenant's KB, opening it on first use, and pins it
// against eviction until the returned release function is called.
func (m *Manager) Acquire(name string) (*kb.KB, func(), error) {
	if !validName(name) {
		return nil, nil, &errBadName{name: name}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, errManagerClosed
	}
	t := m.tenants[name]
	if t == nil {
		if err := m.makeRoomLocked(); err != nil {
			return nil, nil, err
		}
		k, err := m.newKB(name)
		if err != nil {
			return nil, nil, err
		}
		t = &tenant{name: name, k: k}
		m.tenants[name] = t
		m.publishLocked()
		if m.onOpenCount != nil {
			m.onOpenCount(len(m.tenants))
		}
	}
	t.refs++
	return t.k, func() { m.release(t) }, nil
}

// makeRoomLocked evicts the least-recently-used idle tenant when the
// open-KB bound is reached. Callers hold m.mu.
//
//kdb:locked mu
func (m *Manager) makeRoomLocked() error {
	if m.maxOpen <= 0 || len(m.tenants) < m.maxOpen {
		return nil
	}
	var victim *tenant
	for _, t := range m.tenants {
		if t.refs > 0 {
			continue
		}
		if victim == nil || t.lastUsed.Before(victim.lastUsed) {
			victim = t
		}
	}
	if victim == nil {
		return ErrOverloaded
	}
	m.evictLocked(victim)
	return nil
}

// evictLocked closes and forgets one idle tenant. Callers hold m.mu.
//
//kdb:locked mu
func (m *Manager) evictLocked(t *tenant) {
	delete(m.tenants, t.name)
	m.publishLocked()
	// Close waits for in-flight queries; refs == 0 guarantees none are
	// running, so this cannot block on evaluation work.
	_ = t.k.Close()
	if m.onEvict != nil {
		m.onEvict()
	}
	if m.onOpenCount != nil {
		m.onOpenCount(len(m.tenants))
	}
}

// release unpins a tenant after a request finishes.
func (m *Manager) release(t *tenant) {
	m.mu.Lock()
	t.refs--
	t.lastUsed = time.Now()
	m.mu.Unlock()
}

// runJanitor closes tenants that have been idle longer than m.idle.
func (m *Manager) runJanitor() {
	defer m.janitor.Done()
	interval := m.idle / 2
	if interval < time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.baseCtx.Done():
			return
		case <-ticker.C:
			m.sweep()
		}
	}
}

// sweep evicts every idle tenant past the idle deadline.
func (m *Manager) sweep() {
	cutoff := time.Now().Add(-m.idle)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	for _, t := range m.tenants {
		if t.refs == 0 && t.lastUsed.Before(cutoff) {
			m.evictLocked(t)
		}
	}
}

// Open lists the names of the currently open tenants, sorted.
func (m *Manager) Open() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the currently open tenants keyed by name. The KBs
// are not pinned: a concurrently evicted KB is safe to interrogate for
// health (its methods return ErrClosed) but not to serve requests from.
func (m *Manager) Snapshot() map[string]*kb.KB {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*kb.KB, len(m.tenants))
	for name, t := range m.tenants {
		out[name] = t.k
	}
	return out
}

// publishLocked republishes the lock-free tenant view after a change to
// m.tenants. Callers hold m.mu.
//
//kdb:locked mu
func (m *Manager) publishLocked() {
	v := make(map[string]*kb.KB, len(m.tenants))
	for name, t := range m.tenants {
		v[name] = t.k
	}
	m.view.Store(&v)
}

// View returns the last published open-tenant set without taking m.mu.
// The KBs are not pinned (see Snapshot); unlike Snapshot, View is safe
// to call from inside query evaluation and during Close.
func (m *Manager) View() map[string]*kb.KB {
	if v := m.view.Load(); v != nil {
		return *v
	}
	return nil
}

// Closed reports whether Close has begun; the health probe uses it.
func (m *Manager) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Dir returns the store directory of a tenant, or "" for in-memory
// tenants.
func (m *Manager) Dir(name string) string {
	if m.root == "" {
		return ""
	}
	return filepath.Join(m.root, name)
}

// Close stops the janitor and closes every open KB. Later Acquire
// calls fail; releases of in-flight requests remain safe.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.stop)
	var errs []error
	for name, t := range m.tenants {
		delete(m.tenants, name)
		m.publishLocked()
		if err := t.k.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing %s: %w", name, err))
		}
	}
	m.mu.Unlock()
	m.janitor.Wait()
	return errors.Join(errs...)
}

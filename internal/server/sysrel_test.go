package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSysRelationsOverHTTP: the engine's own telemetry answers through
// the ordinary query routes — sys_metric after real traffic, sys_tenant
// reflecting the server's tenant table, describe on the fixed schema.
func TestSysRelationsOverHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	for _, tenant := range []string{"alpha", "beta"} {
		if code, out := post(t, ts, "/v1/kb/"+tenant+"/load", map[string]any{"program": "p(a). q(X) :- p(X)."}); code != http.StatusOK {
			t.Fatalf("load %s: %d %v", tenant, code, out)
		}
	}
	// Traffic so the request counters are non-zero.
	if code, out := post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve q(X)."}); code != http.StatusOK {
		t.Fatalf("warm-up retrieve: %d %v", code, out)
	}

	code, out := post(t, ts, "/v1/kb/alpha/retrieve",
		map[string]any{"stmt": "retrieve sys_metric(N, counter, V) where V > 0."})
	if code != http.StatusOK {
		t.Fatalf("sys_metric retrieve: %d %v", code, out)
	}
	if got := answers(out); len(got) == 0 {
		t.Error("sys_metric returned no counter rows on a served KB")
	}

	code, out = post(t, ts, "/v1/kb/alpha/retrieve",
		map[string]any{"stmt": "retrieve sys_tenant(N, O, D, P)."})
	if code != http.StatusOK {
		t.Fatalf("sys_tenant retrieve: %d %v", code, out)
	}
	got := answers(out)
	if len(got) != 2 {
		t.Fatalf("sys_tenant = %v, want both tenants", got)
	}
	for _, want := range []string{"sys_tenant(alpha, 1, 0, 0)", "sys_tenant(beta, 1, 0, 0)"} {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("sys_tenant = %v, missing %s", got, want)
		}
	}

	// sys_query_stats is on for served KBs; the warm-up statement shows up.
	code, out = post(t, ts, "/v1/kb/alpha/retrieve",
		map[string]any{"stmt": "retrieve sys_query_stats(S, C, T, M)."})
	if code != http.StatusOK {
		t.Fatalf("sys_query_stats retrieve: %d %v", code, out)
	}
	found := false
	for _, g := range answers(out) {
		if strings.Contains(g, "retrieve q(X).") {
			found = true
		}
	}
	if !found {
		t.Errorf("sys_query_stats = %v, missing the warm-up statement", answers(out))
	}

	code, out = post(t, ts, "/v1/kb/alpha/describe", map[string]any{"stmt": "describe sys_relation."})
	if code != http.StatusOK {
		t.Fatalf("describe sys_relation: %d %v", code, out)
	}
	if got := answers(out); len(got) == 0 || !strings.Contains(got[0], "sys_relation(Name, Arity, Facts)") {
		t.Errorf("describe sys_relation = %v", answers(out))
	}

	// The namespace is reserved over HTTP too.
	if code, _ := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "sys_thing(a)."}); code == http.StatusOK {
		t.Error("loading a sys_ definition over HTTP succeeded")
	}
	if code, _ := post(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": "sys_metric(a, counter, 1)"}); code == http.StatusOK {
		t.Error("asserting a sys_ fact over HTTP succeeded")
	}
}

// TestDebugHistoryEndpoint: /v1/debug/history serves the sampled
// series with ages relative to now.
func TestDebugHistoryEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{HistoryResolution: 10 * time.Millisecond, HistoryRetention: time.Minute})

	if code, out := post(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."}); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, out)
	}
	post(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(X)."})
	s.history.Sample() // deterministic: force one sample now

	resp, err := http.Get(ts.URL + "/v1/debug/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history: %d", resp.StatusCode)
	}
	var out historyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ResolutionSeconds != 0.01 {
		t.Errorf("resolution_seconds = %v", out.ResolutionSeconds)
	}
	if out.RetentionSeconds != 60 {
		t.Errorf("retention_seconds = %v", out.RetentionSeconds)
	}
	if len(out.Series) == 0 {
		t.Fatal("history has no series after traffic and a sample")
	}
	for _, s := range out.Series {
		if s.Name == "" || s.Type == "" {
			t.Errorf("series missing name/type: %+v", s)
		}
		for _, sm := range s.Samples {
			if sm.AgeSeconds < 0 {
				t.Errorf("%s: negative age %v", s.Name, sm.AgeSeconds)
			}
		}
	}

	// And the same buffer backs sys_metric_history via the query path.
	code, out2 := post(t, ts, "/v1/kb/alpha/retrieve",
		map[string]any{"stmt": "retrieve sys_metric_history(N, Age, V) where Age < 60."})
	if code != http.StatusOK {
		t.Fatalf("sys_metric_history retrieve: %d %v", code, out2)
	}
	if got := answers(out2); len(got) == 0 {
		t.Error("sys_metric_history empty though /v1/debug/history has series")
	}
}

package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kdb/internal/obs"
	"kdb/internal/storage"
)

// This file is the server's resilience layer: bounded admission with
// load shedding, and a per-tenant circuit breaker that converts
// repeated storage-durability failures into read-only degraded mode
// instead of letting every write grind against a failing disk.

// errShed marks a request rejected by admission control. It wraps
// ErrOverloaded so writeError maps it to 503 with a Retry-After.
var errShed = fmt.Errorf("%w: in-flight request limit reached", ErrOverloaded)

// errDegraded marks a write rejected because the tenant's breaker is
// open: earlier writes kept failing at the storage layer, so the
// tenant serves reads only until a probe write or checkpoint succeeds.
type errDegraded struct{ tenant string }

func (e *errDegraded) Error() string {
	return fmt.Sprintf("server: knowledge base %s is in read-only degraded mode after storage failures; retry later or checkpoint to recover", e.tenant)
}

// admission bounds the requests simultaneously inside the data plane.
// Acquisition is non-blocking: a full server sheds immediately (503 +
// Retry-After) rather than queueing unbounded goroutines.
type admission struct {
	slots    chan struct{}
	inflight atomic.Int64
	gauge    *obs.Gauge
	shed     *obs.Counter
}

func newAdmission(max int, reg *obs.Registry) *admission {
	if max <= 0 {
		return nil // unlimited
	}
	return &admission{
		slots: make(chan struct{}, max),
		gauge: reg.Gauge("kdb_server_inflight"),
		shed:  reg.Counter("kdb_server_shed_total"),
	}
}

// acquire claims a slot, reporting false (and counting the shed) when
// the server is full.
func (a *admission) acquire() bool {
	select {
	case a.slots <- struct{}{}:
		a.gauge.Set(float64(a.inflight.Add(1)))
		return true
	default:
		a.shed.Inc()
		return false
	}
}

func (a *admission) release() {
	<-a.slots
	a.gauge.Set(float64(a.inflight.Add(-1)))
}

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed   breakerState = iota // writes flow, failures counted
	breakerOpen                         // writes rejected until cooldown
	breakerHalfOpen                     // one probe write in flight
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the state for one tenant. Keyed by tenant name — not KB
// pointer — so the state survives idle eviction and reopening.
type breaker struct {
	state     breakerState
	failures  int       // consecutive durability failures while closed
	trippedAt time.Time // when the breaker last opened
}

// breakers holds every tenant's circuit breaker.
//
// Lifecycle: consecutive storage-durability failures trip the breaker
// at threshold; while open, writes are rejected with errDegraded but
// reads keep serving off the in-RAM relations. After cooldown, one
// write is admitted as a probe (half-open); its success closes the
// breaker, a durability failure re-opens it for another cooldown, and
// any other outcome returns to open with the old trip time so the next
// write re-probes immediately. A successful checkpoint — the operation
// that clears a poisoned WAL — closes the breaker from any state.
type breakers struct {
	threshold int           // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	mu sync.Mutex
	m  map[string]*breaker

	stateGauge  func(tenant string) *obs.Gauge
	transitions func(tenant, to string) *obs.Counter
	probes      func(tenant string) *obs.Counter
}

func newBreakers(threshold int, cooldown time.Duration, reg *obs.Registry) *breakers {
	if threshold == 0 {
		threshold = 3
	}
	if cooldown == 0 {
		cooldown = 5 * time.Second
	}
	if cooldown < 0 {
		cooldown = 0
	}
	return &breakers{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		m:         make(map[string]*breaker),
		stateGauge: func(tenant string) *obs.Gauge {
			return reg.Gauge("kdb_server_breaker_state", "tenant", tenant)
		},
		transitions: func(tenant, to string) *obs.Counter {
			return reg.Counter("kdb_server_breaker_transitions_total", "tenant", tenant, "to", to)
		},
		probes: func(tenant string) *obs.Counter {
			return reg.Counter("kdb_server_breaker_probes_total", "tenant", tenant)
		},
	}
}

// setLocked moves a tenant's breaker to state s, updating the metrics.
func (b *breakers) setLocked(tenant string, br *breaker, s breakerState) {
	if br.state == s {
		return
	}
	br.state = s
	b.stateGauge(tenant).Set(float64(s))
	b.transitions(tenant, s.String()).Inc()
}

// admitWrite decides whether a write for tenant may proceed. probe is
// true when this write is the half-open recovery probe; the caller
// must pass it back to record along with the write's outcome, on every
// path where admitWrite returned ok.
func (b *breakers) admitWrite(tenant string) (probe, ok bool) {
	if b == nil || b.threshold <= 0 {
		return false, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[tenant]
	if br == nil || br.state == breakerClosed {
		return false, true
	}
	if br.state == breakerOpen && b.now().Sub(br.trippedAt) >= b.cooldown {
		b.setLocked(tenant, br, breakerHalfOpen)
		b.probes(tenant).Inc()
		return true, true
	}
	return false, false // open inside cooldown, or a probe already in flight
}

// record feeds a write's outcome back. Only storage-durability
// failures count against the breaker: a parse error or arity mismatch
// says nothing about the disk under the tenant.
func (b *breakers) record(tenant string, probe bool, err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	durable := errors.Is(err, storage.ErrDurability)
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[tenant]
	if br == nil {
		if !durable {
			return // healthy tenant, nothing to track
		}
		br = &breaker{}
		b.m[tenant] = br
	}
	switch {
	case probe:
		// This write was the half-open probe.
		switch {
		case err == nil:
			b.setLocked(tenant, br, breakerClosed)
			br.failures = 0
		case durable:
			br.trippedAt = b.now()
			b.setLocked(tenant, br, breakerOpen)
		default:
			// The probe failed for a non-storage reason (bad request); we
			// learned nothing. Reopen with the old trip time so the next
			// write probes again immediately.
			b.setLocked(tenant, br, breakerOpen)
		}
	case br.state == breakerClosed:
		if durable {
			br.failures++
			if br.failures >= b.threshold {
				br.trippedAt = b.now()
				b.setLocked(tenant, br, breakerOpen)
			}
		} else if err == nil {
			br.failures = 0
		}
	}
}

// recordRecovery feeds a checkpoint's outcome back. Checkpoint is the
// recovery operation — it snapshots RAM state and resets (unpoisons)
// the WAL — so it bypasses admitWrite, and its success closes the
// breaker from any state.
func (b *breakers) recordRecovery(tenant string, err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	durable := errors.Is(err, storage.ErrDurability)
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[tenant]
	if br == nil {
		if !durable {
			return
		}
		br = &breaker{}
		b.m[tenant] = br
	}
	switch {
	case err == nil:
		b.setLocked(tenant, br, breakerClosed)
		br.failures = 0
	case durable:
		br.failures = b.threshold
		br.trippedAt = b.now()
		b.setLocked(tenant, br, breakerOpen)
	}
}

// state reports a tenant's breaker state name for /healthz.
func (b *breakers) state(tenant string) string {
	if b == nil || b.threshold <= 0 {
		return breakerClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if br := b.m[tenant]; br != nil {
		return br.state.String()
	}
	return breakerClosed.String()
}

// tracked lists every tenant with breaker state, including tenants
// whose KB has since been evicted (the breaker outlives it).
func (b *breakers) tracked() []string {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.m))
	for name := range b.m {
		out = append(out, name)
	}
	return out
}

package server

import (
	"container/list"
	"fmt"
	"sync"

	"kdb/internal/kb"
	"kdb/internal/obs"
	"kdb/internal/parser"
	"kdb/internal/term"
)

// prepared is one cached statement: the parsed template, its
// placeholder count, and the KB schema generation it was validated
// against. The template is immutable — executions bind placeholders
// into fresh copies (parser.BindPlaceholders) — so one entry serves
// concurrent requests.
type prepared struct {
	key    string
	query  parser.Query
	params int
	gen    uint64
}

// preparedCache is an LRU of parsed-and-validated statements, keyed by
// tenant and statement text. A hit skips the parse and the arity
// validation; staleness is detected by comparing the entry's schema
// generation with the KB's (kb.Generation), so loading a program — or
// an assert that declares a new predicate — invalidates the tenant's
// entries without any cross-structure bookkeeping.
type preparedCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // most recently used at the front; values are *prepared
	byKey map[string]*list.Element

	hits   *obs.Counter
	misses *obs.Counter
}

func newPreparedCache(max int, reg *obs.Registry) *preparedCache {
	if max <= 0 {
		max = 256
	}
	c := &preparedCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
	if reg != nil {
		reg.SetHelp("kdb_server_prepared_total", "Prepared-statement cache lookups by result.")
		c.hits = reg.Counter("kdb_server_prepared_total", "result", "hit")
		c.misses = reg.Counter("kdb_server_prepared_total", "result", "miss")
	}
	return c
}

// Get returns the prepared form of stmt for the tenant, parsing and
// validating on a miss (or a stale hit). The bool reports a cache hit.
func (c *preparedCache) Get(tenantName, stmt string, k *kb.KB) (*prepared, bool, error) {
	key := tenantName + "\x00" + stmt
	gen := k.Generation()
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		p := el.Value.(*prepared)
		if p.gen == gen {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Inc()
			return p, true, nil
		}
		// Stale: the schema changed since validation.
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	c.mu.Unlock()
	c.misses.Inc()

	q, err := parser.ParseQuery(stmt)
	if err != nil {
		return nil, false, err
	}
	n, err := parser.CountPlaceholders(q)
	if err != nil {
		return nil, false, err
	}
	if err := checkArities(q, k); err != nil {
		return nil, false, err
	}
	p := &prepared{key: key, query: q, params: n, gen: gen}

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		// Another request prepared the same statement concurrently; keep
		// the incumbent unless it is stale.
		if inc := el.Value.(*prepared); inc.gen == gen {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			return inc, false, nil
		}
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	c.byKey[key] = c.ll.PushFront(p)
	for c.ll.Len() > c.max {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byKey, old.Value.(*prepared).key)
	}
	c.mu.Unlock()
	return p, false, nil
}

// Len returns the number of cached entries.
func (c *preparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// checkArities validates every atom of the query against the tenant's
// catalog, read-only: predicates the catalog knows must be used at
// their declared arity. Unknown predicates pass — in Datalog an
// unknown predicate is an empty relation, and rejecting it here would
// make prepare-or-execute racy against concurrent loads.
func checkArities(q parser.Query, k *kb.KB) error {
	cat := k.Catalog()
	var err error
	parser.WalkAtoms(q, func(a term.Atom) {
		if err != nil || term.IsComparisonPred(a.Pred) {
			return
		}
		if arity, ok := cat.Arity(a.Pred); ok && arity >= 0 && arity != len(a.Args) {
			err = fmt.Errorf("server: %s used with arity %d but known with arity %d", a.Pred, len(a.Args), arity)
		}
	})
	return err
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kdb/internal/fault"
)

// postResp sends one JSON request and returns the raw response plus
// the decoded body, for tests that need headers.
func postResp(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp, out
}

// healthz fetches and decodes /healthz.
func healthz(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// healthTenantField extracts one field of one tenant from a /healthz body.
func healthTenantField(t *testing.T, h map[string]any, tenant, field string) any {
	t.Helper()
	tenants, _ := h["tenants"].(map[string]any)
	entry, _ := tenants[tenant].(map[string]any)
	if entry == nil {
		t.Fatalf("healthz has no tenant %s: %v", tenant, h)
	}
	return entry[field]
}

// TestBreakerDegradedMode drives a tenant through the full breaker
// lifecycle: repeated storage failures trip it into read-only degraded
// mode (writes 503, reads keep serving off the in-RAM relations), and
// once the fault clears, a cooldown-gated probe write closes it again.
func TestBreakerDegradedMode(t *testing.T) {
	t.Cleanup(fault.Reset)
	s, ts, _ := newTestServer(t, Config{
		Root:             t.TempDir(),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})

	resp, out := postResp(t, ts, "/v1/kb/alpha/load", map[string]any{"program": teachingProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, out)
	}

	// Every WAL fsync fails; each assert rewinds cleanly and surfaces a
	// 503 "storage" with a Retry-After hint.
	if err := fault.Enable(fault.SiteWALSync, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{}); err != nil {
		t.Fatal(err)
	}
	// Distinct facts each time: a duplicate assert is satisfied in RAM
	// and never reaches the WAL, so it would not exercise the fault.
	for i, fact := range []string{"takes(eve, databases)", "takes(eve, compilers)"} {
		resp, out = postResp(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": fact})
		if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "storage" {
			t.Fatalf("assert %d under fsync fault: %d %q %v", i, resp.StatusCode, errCode(t, out), out)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("storage 503 is missing Retry-After")
		}
	}

	// Two consecutive durability failures tripped the breaker: the next
	// write is rejected without touching storage.
	resp, out = postResp(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": "takes(eve, databases)"})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "degraded" {
		t.Fatalf("assert on tripped tenant: %d %q %v", resp.StatusCode, errCode(t, out), out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 is missing Retry-After")
	}
	if got := fault.Hits(fault.SiteWALSync); got != 2 {
		t.Errorf("degraded write reached storage: %d fsync fault hits, want 2", got)
	}

	// Reads keep working in degraded mode.
	for _, probe := range []struct{ path, stmt string }{
		{"/v1/kb/alpha/retrieve", "retrieve honor(X)."},
		{"/v1/kb/alpha/describe", "describe honor(X)."},
		{"/v1/kb/alpha/explain", "explain honor(ann)."},
	} {
		resp, out = postResp(t, ts, probe.path, map[string]any{"stmt": probe.stmt})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on degraded tenant: %d %v", probe.path, resp.StatusCode, out)
		}
	}

	h := healthz(t, ts)
	if h["ok"] != true || h["state"] != "serving" {
		t.Fatalf("healthz while degraded: %v", h)
	}
	if got := healthTenantField(t, h, "alpha", "breaker"); got != "open" {
		t.Errorf("healthz breaker = %v, want open", got)
	}
	if got := healthTenantField(t, h, "alpha", "degraded"); got != true {
		t.Errorf("healthz degraded = %v, want true", got)
	}
	// The fsync faults rewound cleanly — the WAL is not poisoned.
	if got := healthTenantField(t, h, "alpha", "poisoned"); got == true {
		t.Errorf("healthz poisoned = %v, want false/absent", got)
	}

	// Storage heals, the cooldown elapses: the next write goes through
	// as the recovery probe and closes the breaker.
	fault.Reset()
	s.breakers.mu.Lock()
	s.breakers.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.breakers.mu.Unlock()
	resp, out = postResp(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": "takes(ann, compilers)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe write: %d %v", resp.StatusCode, out)
	}
	if got := s.breakers.state("alpha"); got != "closed" {
		t.Errorf("breaker after successful probe = %s, want closed", got)
	}
	resp, out = postResp(t, ts, "/v1/kb/alpha/assert", map[string]any{"fact": "takes(bob, compilers)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write after recovery: %d %v", resp.StatusCode, out)
	}
}

// TestBreakerProbeFailureReopens: a probe that hits a still-failing
// store re-opens the breaker for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	t.Cleanup(fault.Reset)
	s, ts, _ := newTestServer(t, Config{
		Root:             t.TempDir(),
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	// Open the tenant before arming the fault: a WAL fault during the
	// lazy open would fail the whole Acquire, never reaching the write.
	resp, out := postResp(t, ts, "/v1/kb/beta/assert", map[string]any{"fact": "p(seed)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed assert: %d %v", resp.StatusCode, out)
	}
	if err := fault.Enable(fault.SiteWALSync, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{}); err != nil {
		t.Fatal(err)
	}
	resp, out = postResp(t, ts, "/v1/kb/beta/assert", map[string]any{"fact": "p(a)"})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "storage" {
		t.Fatalf("assert under fault: %d %v", resp.StatusCode, out)
	}
	if got := s.breakers.state("beta"); got != "open" {
		t.Fatalf("breaker = %s, want open", got)
	}
	// Cooldown elapses, but the store still fails: the probe re-trips.
	base := time.Now()
	s.breakers.mu.Lock()
	s.breakers.now = func() time.Time { return base.Add(2 * time.Hour) }
	s.breakers.mu.Unlock()
	resp, out = postResp(t, ts, "/v1/kb/beta/assert", map[string]any{"fact": "p(b)"})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "storage" {
		t.Fatalf("probe under fault: %d %v", resp.StatusCode, out)
	}
	if got := s.breakers.state("beta"); got != "open" {
		t.Fatalf("breaker after failed probe = %s, want open", got)
	}
	// Inside the new cooldown, writes shed as degraded without probing.
	resp, out = postResp(t, ts, "/v1/kb/beta/assert", map[string]any{"fact": "p(c)"})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "degraded" {
		t.Fatalf("write inside renewed cooldown: %d %v", resp.StatusCode, out)
	}
}

// TestCheckpointRecoversPoisonedTenant: a torn WAL write poisons the
// log (every later write fails), and the /checkpoint route is the
// recovery path — it snapshots the in-RAM state, resets the log, and
// closes the breaker, all in one request.
func TestCheckpointRecoversPoisonedTenant(t *testing.T) {
	t.Cleanup(fault.Reset)
	s, ts, _ := newTestServer(t, Config{
		Root:             t.TempDir(),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	resp, out := postResp(t, ts, "/v1/kb/gamma/assert", map[string]any{"fact": "p(a)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assert: %d %v", resp.StatusCode, out)
	}
	if err := fault.Enable(fault.SiteWALAppend, fault.Outcome{TornBytes: 2}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	// The torn write fails and poisons the log; the next (distinct)
	// fact fails on the poison, tripping the breaker at threshold 2.
	for i, fact := range []string{"p(b)", "p(c)"} {
		resp, out = postResp(t, ts, "/v1/kb/gamma/assert", map[string]any{"fact": fact})
		if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "storage" {
			t.Fatalf("assert %d on poisoned log: %d %v", i, resp.StatusCode, out)
		}
	}
	fault.Reset()
	h := healthz(t, ts)
	if got := healthTenantField(t, h, "gamma", "poisoned"); got != true {
		t.Fatalf("healthz poisoned = %v, want true", got)
	}
	if got := s.breakers.state("gamma"); got != "open" {
		t.Fatalf("breaker = %s, want open", got)
	}

	// Recovery: checkpoint bypasses the breaker, captures RAM state,
	// clears the poison, and closes the breaker.
	resp, out = postResp(t, ts, "/v1/kb/gamma/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}
	if got := s.breakers.state("gamma"); got != "closed" {
		t.Errorf("breaker after checkpoint = %s, want closed", got)
	}
	h = healthz(t, ts)
	if got := healthTenantField(t, h, "gamma", "poisoned"); got == true {
		t.Errorf("healthz poisoned after checkpoint = %v, want cleared", got)
	}
	resp, out = postResp(t, ts, "/v1/kb/gamma/assert", map[string]any{"fact": "p(d)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assert after recovery: %d %v", resp.StatusCode, out)
	}
	// The torn-written facts reached RAM before their appends failed, so
	// the checkpoint made them durable: a, b, c, d are all present.
	resp, out = postResp(t, ts, "/v1/kb/gamma/retrieve", map[string]any{"stmt": "retrieve p(X)."})
	if resp.StatusCode != http.StatusOK || len(answers(out)) != 4 {
		t.Fatalf("retrieve after recovery: %d %v", resp.StatusCode, out)
	}
}

// TestAdmissionSheds: with one in-flight slot, a request that arrives
// while another is being served is shed with 503 + Retry-After instead
// of queueing.
func TestAdmissionSheds(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, ts, reg := newTestServer(t, Config{MaxInFlight: 1})
	resp, out := postResp(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, out)
	}

	// The first request parks inside the data plane (injected latency),
	// holding the only slot.
	if err := fault.Enable(fault.SiteRequest, fault.Outcome{Delay: 500 * time.Millisecond}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postResp(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(X)."})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slow request: %d", resp.StatusCode)
		}
	}()
	// Wait until the slow request is inside its slot.
	deadline := time.Now().Add(2 * time.Second)
	for fault.Hits(fault.SiteRequest) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the data plane")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, out = postResp(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(X)."})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "overloaded" {
		t.Fatalf("concurrent request: %d %q %v, want 503 overloaded", resp.StatusCode, errCode(t, out), out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response is missing Retry-After")
	}
	wg.Wait()
	if got := reg.Counter("kdb_server_shed_total").Value(); got != 1 {
		t.Errorf("kdb_server_shed_total = %d, want 1", got)
	}
	// The slot is free again.
	resp, _ = postResp(t, ts, "/v1/kb/alpha/retrieve", map[string]any{"stmt": "retrieve p(X)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after drain: %d", resp.StatusCode)
	}
}

// TestLimitResponseCarriesRetryAfter: the pre-existing 429 (limit
// breach) now carries a Retry-After hint too.
func TestLimitResponseCarriesRetryAfter(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{RetryAfter: 3 * time.Second})
	resp, out := postResp(t, ts, "/v1/kb/alpha/load", map[string]any{
		"program": "edge(a, b). edge(b, c). path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, out)
	}
	resp, out = postResp(t, ts, "/v1/kb/alpha/retrieve", map[string]any{
		"stmt":   "retrieve path(X, Y).",
		"limits": map[string]any{"max_facts": 1},
	})
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, out) != "limit" {
		t.Fatalf("limited retrieve: %d %q %v", resp.StatusCode, errCode(t, out), out)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
}

// TestTenantOpenFaultIsTransient: a fault at tenant open fails that
// request but leaves nothing cached — the next request opens cleanly.
func TestTenantOpenFaultIsTransient(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, ts, _ := newTestServer(t, Config{})
	if err := fault.Enable(fault.SiteTenantOpen, fault.Outcome{Err: fault.ErrInjected}, fault.Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	resp, out := postResp(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, out) != "storage" {
		t.Fatalf("load under open fault: %d %q %v", resp.StatusCode, errCode(t, out), out)
	}
	resp, out = postResp(t, ts, "/v1/kb/alpha/load", map[string]any{"program": "p(a)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load after fault: %d %v", resp.StatusCode, out)
	}
}

package catalog

import (
	"strings"
	"testing"

	"kdb/internal/term"
)

func TestNewHasBuiltins(t *testing.T) {
	c := New()
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		if !c.IsBuiltin(op) {
			t.Errorf("IsBuiltin(%q) = false", op)
		}
		p := c.Lookup(op)
		if p == nil || p.Arity != 2 {
			t.Errorf("Lookup(%q) = %+v", op, p)
		}
	}
}

func TestDeclareAndLookup(t *testing.T) {
	c := New()
	p, err := c.Declare("student", 3, ClassEDB)
	if err != nil {
		t.Fatal(err)
	}
	if p.Functor() != "student/3" {
		t.Errorf("Functor = %q", p.Functor())
	}
	if !c.IsEDB("student") || c.IsIDB("student") || c.IsBuiltin("student") {
		t.Error("class predicates misreport")
	}
	// Identical re-declaration is a no-op.
	if _, err := c.Declare("student", 3, ClassEDB); err != nil {
		t.Errorf("idempotent declare failed: %v", err)
	}
	// Arity conflict.
	if _, err := c.Declare("student", 2, ClassEDB); err == nil {
		t.Error("arity conflict must fail")
	}
	// Class conflict (P and S are disjoint).
	if _, err := c.Declare("student", 3, ClassIDB); err == nil {
		t.Error("class conflict must fail")
	}
	// Builtins cannot be redefined.
	if _, err := c.Declare("=", 2, ClassIDB); err == nil {
		t.Error("redefining a builtin must fail")
	}
}

func TestClassUnknown(t *testing.T) {
	c := New()
	cls, known := c.Class("nope")
	if known || cls != ClassEDB {
		t.Errorf("Class(nope) = %v, %v", cls, known)
	}
	if _, known := c.Class("="); !known {
		t.Error("builtins must be known")
	}
}

func TestPromote(t *testing.T) {
	c := New()
	if _, err := c.Declare("honor", 1, ClassEDB); err != nil {
		t.Fatal(err)
	}
	if err := c.Promote("honor"); err != nil {
		t.Fatal(err)
	}
	if !c.IsIDB("honor") {
		t.Error("promotion must make the predicate IDB")
	}
	if err := c.Promote("absent"); err == nil {
		t.Error("promoting unknown predicate must fail")
	}
	if err := c.Promote("="); err == nil {
		t.Error("promoting a builtin must fail")
	}
}

func TestAddKey(t *testing.T) {
	c := New()
	if err := c.AddKey("student", 3, []int{1}); err != nil {
		t.Fatal(err)
	}
	p := c.Lookup("student")
	if p == nil || len(p.Keys) != 1 || p.Keys[0][0] != 1 {
		t.Fatalf("key not recorded: %+v", p)
	}
	// Idempotent. Lookup returns copies, so re-read after each AddKey.
	if err := c.AddKey("student", 3, []int{1}); err != nil || len(c.Lookup("student").Keys) != 1 {
		t.Errorf("repeated AddKey: err=%v keys=%v", err, c.Lookup("student").Keys)
	}
	// Second distinct key.
	if err := c.AddKey("student", 3, []int{2, 3}); err != nil || len(c.Lookup("student").Keys) != 2 {
		t.Errorf("second key: err=%v keys=%v", err, c.Lookup("student").Keys)
	}
	// Keys are stored sorted.
	if err := c.AddKey("complete", 4, []int{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	k := c.Lookup("complete").Keys[0]
	if k[0] != 1 || k[1] != 2 || k[2] != 3 {
		t.Errorf("key not sorted: %v", k)
	}
	// Errors.
	if err := c.AddKey("student", 4, []int{1}); err == nil {
		t.Error("arity conflict must fail")
	}
	if err := c.AddKey("student", 3, []int{5}); err == nil {
		t.Error("out-of-range column must fail")
	}
	if err := c.AddKey("student", 3, []int{2, 2}); err == nil {
		t.Error("repeated column must fail")
	}
}

func TestDisplayName(t *testing.T) {
	c := New()
	if got := c.DisplayName("prior"); got != "prior" {
		t.Errorf("default display = %q", got)
	}
	c.SetDisplay("prior_step", "chain")
	if got := c.DisplayName("prior_step"); got != "chain" {
		t.Errorf("display = %q", got)
	}
	// SetDisplay on a declared predicate.
	if _, err := c.Declare("prior", 2, ClassIDB); err != nil {
		t.Fatal(err)
	}
	c.SetDisplay("prior", "before")
	if got := c.DisplayName("prior"); got != "before" {
		t.Errorf("display = %q", got)
	}
}

func TestCheckAtom(t *testing.T) {
	c := New()
	if err := c.CheckAtom(term.NewAtom("student", term.Var("X"), term.Var("Y"), term.Var("Z")), ClassEDB); err != nil {
		t.Fatal(err)
	}
	if !c.IsEDB("student") {
		t.Error("CheckAtom must register unknown predicates")
	}
	if err := c.CheckAtom(term.NewAtom("student", term.Var("X")), ClassEDB); err == nil {
		t.Error("arity conflict must fail")
	}
	if err := c.CheckAtom(term.NewAtom(">", term.Var("X"), term.Num(1)), ClassEDB); err != nil {
		t.Errorf("comparison atom: %v", err)
	}
	if err := c.CheckAtom(term.NewAtom(">", term.Var("X")), ClassEDB); err == nil {
		t.Error("unary comparison must fail")
	}
}

func TestPredsAndString(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Declare(n, 1, ClassEDB); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Declare("derived", 2, ClassIDB); err != nil {
		t.Fatal(err)
	}
	edb := c.Preds(ClassEDB)
	if len(edb) != 3 || edb[0].Name != "alpha" || edb[2].Name != "zeta" {
		t.Errorf("Preds(EDB) = %v", edb)
	}
	s := c.String()
	if !strings.Contains(s, "EDB: alpha/1 mid/1 zeta/1") || !strings.Contains(s, "IDB: derived/2") {
		t.Errorf("String = %q", s)
	}
}

func TestClassString(t *testing.T) {
	if ClassEDB.String() != "EDB" || ClassIDB.String() != "IDB" || ClassBuiltin.String() != "builtin" {
		t.Error("Class.String misbehaves")
	}
}

func TestFunctorWithoutArity(t *testing.T) {
	c := New()
	c.SetDisplay("ghost_step", "spirit")
	if got := c.Lookup("ghost_step").Functor(); got != "ghost_step" {
		t.Errorf("Functor = %q, want bare name for arity-less predicate", got)
	}
}

// Package catalog maintains the schema of a knowledge-rich database: the
// mutually disjoint predicate sets P (extensional), R (built-in) and S
// (intensional) of the paper's Section 2.1, each predicate's arity, and
// the optional schema annotations (@key, @name) used by the Section 6
// extensions.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"kdb/internal/term"
)

// Class partitions predicates into the paper's three disjoint sets.
type Class uint8

// Predicate classes.
const (
	// ClassEDB is a stored predicate (set P): defined by its facts.
	ClassEDB Class = iota
	// ClassIDB is a derived predicate (set S): defined by its rules.
	ClassIDB
	// ClassBuiltin is a built-in comparison predicate (set R).
	ClassBuiltin
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassEDB:
		return "EDB"
	case ClassIDB:
		return "IDB"
	case ClassBuiltin:
		return "builtin"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Pred describes one predicate.
type Pred struct {
	Name  string
	Arity int
	Class Class
	// Keys lists the declared candidate keys, each a sorted set of 1-based
	// column numbers. Used by the possibility checker (§6 extension 3).
	Keys [][]int
	// Display is the preferred rendering name (from @name), used when the
	// Imielinski transformation introduces artificial predicates (§5.3).
	Display string
}

// Functor returns "name/arity". A predicate known only from a @name
// declaration has no arity yet and renders as its bare name.
func (p *Pred) Functor() string {
	if p.Arity < 0 {
		return p.Name
	}
	return fmt.Sprintf("%s/%d", p.Name, p.Arity)
}

// clone returns an independent copy (Keys deep-copied), so accessors can
// hand descriptors across the catalog's lock boundary.
func (p *Pred) clone() *Pred {
	cp := *p
	if p.Keys != nil {
		cp.Keys = make([][]int, len(p.Keys))
		for i, k := range p.Keys {
			cp.Keys[i] = append([]int(nil), k...)
		}
	}
	return &cp
}

// Catalog is the schema of one knowledge base. The zero value is not
// usable; call New. All methods are safe for concurrent use; accessors
// return copies, so a descriptor read by one goroutine is never mutated
// by a concurrent Promote/AddKey/SetDisplay.
type Catalog struct {
	mu    sync.RWMutex
	preds map[string]*Pred // keyed by name (arity is enforced consistent)
}

// New returns an empty catalog with the built-in comparison predicates
// pre-registered.
func New() *Catalog {
	c := &Catalog{preds: make(map[string]*Pred)}
	for _, op := range []string{term.PredEq, term.PredNe, term.PredLt, term.PredLe, term.PredGt, term.PredGe} {
		c.preds[op] = &Pred{Name: op, Arity: 2, Class: ClassBuiltin}
	}
	return c
}

// Lookup returns a copy of the predicate descriptor, or nil if unknown.
func (c *Catalog) Lookup(name string) *Pred {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p := c.preds[name]; p != nil {
		return p.clone()
	}
	return nil
}

// Arity returns the declared arity of a predicate and whether it is
// known. A predicate known only from a @name declaration reports
// (-1, true).
func (c *Catalog) Arity(name string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p := c.preds[name]; p != nil {
		return p.Arity, true
	}
	return 0, false
}

// Class returns the class of a predicate name; unknown names report
// ClassEDB (an unknown predicate in a query body is an empty stored
// relation, matching standard Datalog semantics) and false.
func (c *Catalog) Class(name string) (Class, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p := c.preds[name]; p != nil {
		return p.Class, true
	}
	return ClassEDB, false
}

// IsIDB reports whether the predicate is intensional.
func (c *Catalog) IsIDB(name string) bool {
	cl, ok := c.Class(name)
	return ok && cl == ClassIDB
}

// IsEDB reports whether the predicate is extensional (stored).
func (c *Catalog) IsEDB(name string) bool {
	cl, ok := c.Class(name)
	return ok && cl == ClassEDB
}

// IsBuiltin reports whether the predicate is a built-in comparison.
func (c *Catalog) IsBuiltin(name string) bool {
	cl, ok := c.Class(name)
	return ok && cl == ClassBuiltin
}

// Preds returns copies of all registered predicates of the given class,
// sorted by name for deterministic iteration.
func (c *Catalog) Preds(class Class) []*Pred {
	c.mu.RLock()
	var out []*Pred
	for _, p := range c.preds {
		if p.Class == class {
			out = append(out, p.clone())
		}
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Declare registers a predicate with the given class and arity. It is an
// error to re-declare with a different arity or a conflicting class.
// Re-declaring identically is a no-op. The returned descriptor is a
// copy.
func (c *Catalog) Declare(name string, arity int, class Class) (*Pred, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.declareLocked(name, arity, class)
	if err != nil {
		return nil, err
	}
	return p.clone(), nil
}

func (c *Catalog) declareLocked(name string, arity int, class Class) (*Pred, error) {
	if term.IsComparisonPred(name) && class != ClassBuiltin {
		return nil, fmt.Errorf("catalog: %q is a built-in comparison and cannot be redefined", name)
	}
	if p, ok := c.preds[name]; ok {
		if p.Arity != arity {
			return nil, fmt.Errorf("catalog: predicate %s used with arity %d but previously with arity %d", name, arity, p.Arity)
		}
		if p.Class != class {
			return nil, fmt.Errorf("catalog: predicate %s is %s but used as %s (the sets P, R, S are disjoint)", name, p.Class, class)
		}
		return p, nil
	}
	p := &Pred{Name: name, Arity: arity, Class: class}
	c.preds[name] = p
	return p, nil
}

// Promote upgrades an EDB predicate to IDB. This is how a predicate that
// was first seen in a ground fact becomes intensional when a later rule
// defines it: its facts become bodiless rules (paper §2.1 allows rules
// with n = 0 subgoals).
func (c *Catalog) Promote(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.preds[name]
	if !ok {
		return fmt.Errorf("catalog: cannot promote unknown predicate %s", name)
	}
	if p.Class == ClassBuiltin {
		return fmt.Errorf("catalog: cannot promote built-in %s", name)
	}
	p.Class = ClassIDB
	return nil
}

// AddKey records a candidate key (1-based column numbers) for the
// predicate. The predicate must already be declared with matching arity.
func (c *Catalog) AddKey(name string, arity int, cols []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.preds[name]
	if !ok {
		// Allow a @key declaration to precede the first fact.
		var err error
		p, err = c.declareLocked(name, arity, ClassEDB)
		if err != nil {
			return err
		}
	}
	if p.Arity != arity {
		return fmt.Errorf("catalog: @key %s/%d conflicts with arity %d", name, arity, p.Arity)
	}
	key := append([]int(nil), cols...)
	sort.Ints(key)
	for i, col := range key {
		if col < 1 || col > arity {
			return fmt.Errorf("catalog: @key %s/%d column %d out of range", name, arity, col)
		}
		if i > 0 && key[i-1] == col {
			return fmt.Errorf("catalog: @key %s/%d repeats column %d", name, arity, col)
		}
	}
	for _, existing := range p.Keys {
		if equalInts(existing, key) {
			return nil // idempotent
		}
	}
	p.Keys = append(p.Keys, key)
	return nil
}

// SetDisplay records the preferred display name for a predicate,
// declaring it lazily if needed (the artificial predicates of the
// transformation may not exist yet when the program is loaded).
func (c *Catalog) SetDisplay(name, display string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.preds[name]
	if !ok {
		p = &Pred{Name: name, Arity: -1, Class: ClassIDB}
		c.preds[name] = p
	}
	p.Display = display
}

// DisplayName returns the preferred rendering name for a predicate
// (falling back to the predicate name itself).
func (c *Catalog) DisplayName(name string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p, ok := c.preds[name]; ok && p.Display != "" {
		return p.Display
	}
	return name
}

// CheckAtom validates one atom occurrence against the catalog: known
// predicates must be used with a consistent arity. Unknown predicates are
// registered with the given default class.
func (c *Catalog) CheckAtom(a term.Atom, defaultClass Class) error {
	if term.IsComparisonPred(a.Pred) {
		if len(a.Args) != 2 {
			return fmt.Errorf("catalog: comparison %s used with arity %d, want 2", a.Pred, len(a.Args))
		}
		return nil
	}
	_, err := c.Declare(a.Pred, len(a.Args), defaultClass)
	return err
}

// String summarizes the catalog for diagnostics.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, class := range []Class{ClassEDB, ClassIDB, ClassBuiltin} {
		ps := c.Preds(class)
		if len(ps) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:", class)
		for _, p := range ps {
			fmt.Fprintf(&b, " %s", p.Functor())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package transform implements the rule transformation of Section 5.2 of
// the paper (due to Imielinski), which restructures strongly linear,
// typed recursive rules so that Algorithm 2 can bound their application:
//
// For a recursive predicate p with recursive rules C = {r_1 … r_k}, let
// w_i be the body of r_i without the p occurrence, and let α be the set
// of argument positions of p (in head or body occurrence) whose variables
// are shared with some w_i. With m = |α|, a fresh "step" predicate t of
// arity 2m replaces C with:
//
//	rT:  p(…Z at α, X elsewhere…) ← p(X_1,…,X_n) ∧ t(X_α, Z_α)
//	rI:  t(A_α, C_α) ← w_i             (one per recursive rule)
//	rC:  t(X̄, Z̄) ← t(X̄, Ȳ) ∧ t(Ȳ, Z̄)
//
// where A_α are the body-occurrence arguments of p at positions α and
// C_α the head-occurrence arguments. The transformation preserves the
// extension of p.
//
// The package also implements the paper's *modified* transformation
// (§5.3): when the initialization rules are variants of p's own
// non-recursive rules under a single position permutation, the artificial
// predicate is avoided altogether and t-atoms can be rendered as p-atoms
// — yielding the paper's preferred answer to Example 6.
package transform

import (
	"fmt"
	"sort"

	"kdb/internal/depgraph"
	"kdb/internal/term"
)

// RuleKind classifies rules in a transformed program for Algorithm 2's
// tagging discipline.
type RuleKind uint8

// Rule kinds.
const (
	// KindOrdinary is any rule the transformation did not introduce.
	KindOrdinary RuleKind = iota
	// KindRT is a transformation rule p ← p ∧ t.
	KindRT
	// KindRI is an initialization rule t ← w_i.
	KindRI
	// KindRC is the continuation rule t ← t ∧ t.
	KindRC
)

// String names the kind.
func (k RuleKind) String() string {
	switch k {
	case KindOrdinary:
		return "ordinary"
	case KindRT:
		return "rT"
	case KindRI:
		return "rI"
	case KindRC:
		return "rC"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Transformed records the transformation of one recursive predicate.
type Transformed struct {
	// Pred is the recursive predicate.
	Pred string
	// StepPred is the artificial predicate's name (Pred + "_step").
	StepPred string
	// Alpha holds the 0-based shared positions, sorted.
	Alpha []int
	// RT, RIs, RC are the produced rules.
	RT  term.Rule
	RIs []term.Rule
	RC  term.Rule
	// StepToPred, when non-nil, witnesses the modified transformation: it
	// maps each argument position of StepPred to an argument position of
	// Pred, such that t(a_1,…,a_2m) ≡ p(…) with a_j at position
	// StepToPred[j]. Answers may then be rendered without the artificial
	// predicate (§5.3).
	StepToPred []int
}

// Result is the outcome of transforming a rule set.
type Result struct {
	// Rules is the full transformed rule set.
	Rules []term.Rule
	// ByPred indexes the per-predicate transformations.
	ByPred map[string]*Transformed
	// Untyped lists recursive rules that violate the strong-linearity or
	// typedness discipline; they are kept verbatim in Rules and must be
	// handled by Algorithm 2's bounded mode (§5.3, end).
	Untyped []term.Rule

	kinds map[string]RuleKind // rule key → kind
	steps map[string]*Transformed
}

// Kind classifies a rule of the transformed set.
func (res *Result) Kind(r term.Rule) RuleKind {
	if k, ok := res.kinds[r.Key()]; ok {
		return k
	}
	return KindOrdinary
}

// IsStepPred reports whether pred is an artificial step predicate and, if
// so, returns its transformation record.
func (res *Result) IsStepPred(pred string) (*Transformed, bool) {
	tr, ok := res.steps[pred]
	return tr, ok
}

// IsUntypedRule reports whether the rule was exempted from the
// transformation for violating the discipline.
func (res *Result) IsUntypedRule(r term.Rule) bool {
	key := r.Key()
	for _, u := range res.Untyped {
		if u.Key() == key {
			return true
		}
	}
	return false
}

// Apply transforms every disciplined recursive predicate of the rule set.
// Recursive rules that are not strongly linear or not typed are left in
// place and reported in Result.Untyped. Mutually recursive predicates are
// first rewritten to direct recursion via depgraph.MakeStronglyLinear
// when possible.
func Apply(rules []term.Rule) (*Result, error) {
	// Best-effort strong-linearization of linear mutual recursion
	// (footnote 2). If it fails (non-linear recursion), keep the original
	// rules; they will land in Untyped.
	if lin, err := depgraph.MakeStronglyLinear(rules, 8); err == nil {
		rules = lin
	}
	g := depgraph.New(rules)
	res := &Result{
		ByPred: make(map[string]*Transformed),
		kinds:  make(map[string]RuleKind),
		steps:  make(map[string]*Transformed),
	}

	// Group rules: per recursive predicate, split recursive/non-recursive.
	recByPred := make(map[string][]term.Rule)
	var order []string
	for _, r := range rules {
		if g.IsRecursiveRule(r) {
			if g.IsStronglyLinear(r) && depgraph.TypedWRT(r, r.Head.Pred) {
				if _, seen := recByPred[r.Head.Pred]; !seen {
					order = append(order, r.Head.Pred)
				}
				recByPred[r.Head.Pred] = append(recByPred[r.Head.Pred], r)
			} else {
				res.Untyped = append(res.Untyped, r)
			}
		}
	}
	// If a predicate has both disciplined and undisciplined recursive
	// rules, exempt the whole predicate: mixing the transformation with
	// bounded raw recursion would change its meaning.
	for _, r := range res.Untyped {
		if _, ok := recByPred[r.Head.Pred]; ok {
			res.Untyped = append(res.Untyped, recByPred[r.Head.Pred]...)
			delete(recByPred, r.Head.Pred)
		}
	}

	transformed := make(map[string]bool)
	for _, pred := range order {
		recRules, ok := recByPred[pred]
		if !ok {
			continue
		}
		var nonRec []term.Rule
		for _, r := range g.RulesFor(pred) {
			if !g.IsRecursiveRule(r) {
				nonRec = append(nonRec, r)
			}
		}
		tr, err := transformPred(pred, recRules, nonRec)
		if err != nil {
			return nil, err
		}
		res.ByPred[pred] = tr
		res.steps[tr.StepPred] = tr
		transformed[pred] = true
	}

	// Assemble the output rule set: originals minus replaced recursive
	// rules, plus the new rules.
	for _, r := range rules {
		if transformed[r.Head.Pred] && g.IsRecursiveRule(r) && !res.IsUntypedRule(r) {
			continue
		}
		res.Rules = append(res.Rules, r)
	}
	for _, pred := range order {
		tr, ok := res.ByPred[pred]
		if !ok {
			continue
		}
		res.Rules = append(res.Rules, tr.RT)
		res.kinds[tr.RT.Key()] = KindRT
		for _, ri := range tr.RIs {
			res.Rules = append(res.Rules, ri)
			res.kinds[ri.Key()] = KindRI
		}
		res.Rules = append(res.Rules, tr.RC)
		res.kinds[tr.RC.Key()] = KindRC
	}
	return res, nil
}

// Probe dry-runs the transformation and reports, per disciplined
// recursive predicate, why it cannot be transformed (degenerate
// recursion, as surfaced by Apply's error). Predicates that transform
// cleanly produce no entry; undisciplined recursive rules are not
// probed — they are exempt from the transformation and handled by the
// bounded mode (§5.3, end).
func Probe(rules []term.Rule) map[string]error {
	if lin, err := depgraph.MakeStronglyLinear(rules, 8); err == nil {
		rules = lin
	}
	g := depgraph.New(rules)
	recByPred := make(map[string][]term.Rule)
	undisciplined := make(map[string]bool)
	for _, r := range rules {
		if !g.IsRecursiveRule(r) {
			continue
		}
		if g.IsStronglyLinear(r) && depgraph.TypedWRT(r, r.Head.Pred) {
			recByPred[r.Head.Pred] = append(recByPred[r.Head.Pred], r)
		} else {
			undisciplined[r.Head.Pred] = true
		}
	}
	out := make(map[string]error)
	for pred, recRules := range recByPred {
		if undisciplined[pred] {
			continue // whole predicate exempted, as in Apply
		}
		var nonRec []term.Rule
		for _, r := range g.RulesFor(pred) {
			if !g.IsRecursiveRule(r) {
				nonRec = append(nonRec, r)
			}
		}
		if _, err := transformPred(pred, recRules, nonRec); err != nil {
			out[pred] = err
		}
	}
	return out
}

// transformPred builds rT, rI and rC for one predicate.
func transformPred(pred string, recRules, nonRec []term.Rule) (*Transformed, error) {
	n := recRules[0].Head.Arity()
	stepPred := pred + "_step"

	// decompose each rule: body occurrence of p, and w (rest of the body).
	type decomposed struct {
		head, rec term.Atom
		w         term.Formula
	}
	decs := make([]decomposed, len(recRules))
	for i, r := range recRules {
		idx := -1
		for j, a := range r.Body {
			if a.Pred == pred {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("transform: rule %v is not strongly linear", r)
		}
		if r.Head.Arity() != n || r.Body[idx].Arity() != n {
			return nil, fmt.Errorf("transform: predicate %s is used with conflicting arities", pred)
		}
		var w term.Formula
		w = append(w, r.Body[:idx]...)
		w = append(w, r.Body[idx+1:]...)
		decs[i] = decomposed{head: r.Head, rec: r.Body[idx], w: w}
	}

	// α: positions of p (head or body occurrence) whose variables are
	// shared with w, plus positions where head and body occurrence
	// disagree (generalization keeping the rewrite meaning-preserving for
	// rules that move constants or rename pass-through variables).
	alphaSet := make(map[int]bool)
	for _, d := range decs {
		wVars := make(map[term.Term]bool)
		for _, v := range d.w.Vars() {
			wVars[v] = true
		}
		for j := 0; j < n; j++ {
			h, b := d.head.Args[j], d.rec.Args[j]
			if (h.IsVar() && wVars[h]) || (b.IsVar() && wVars[b]) || h != b {
				alphaSet[j] = true
			}
		}
	}
	alpha := make([]int, 0, len(alphaSet))
	for j := range alphaSet {
		alpha = append(alpha, j)
	}
	sort.Ints(alpha)
	m := len(alpha)
	if m == 0 {
		return nil, fmt.Errorf("transform: predicate %s has no shared positions; recursive rules are degenerate", pred)
	}

	// rT: p(…) ← p(X_1,…,X_n) ∧ t(X_α, Z_α).
	xs := make([]term.Term, n)
	for j := 0; j < n; j++ {
		xs[j] = term.Var(fmt.Sprintf("X%d", j+1))
	}
	headArgs := make([]term.Term, n)
	copy(headArgs, xs)
	tArgs := make([]term.Term, 0, 2*m)
	for _, j := range alpha {
		tArgs = append(tArgs, xs[j])
	}
	for _, j := range alpha {
		z := term.Var(fmt.Sprintf("Z%d", j+1))
		headArgs[j] = z
		tArgs = append(tArgs, z)
	}
	rt := term.Rule{
		Head: term.NewAtom(pred, headArgs...),
		Body: term.Formula{term.NewAtom(pred, xs...), term.NewAtom(stepPred, tArgs...)},
	}

	// rI per recursive rule: t(A_α, C_α) ← w_i.
	ris := make([]term.Rule, len(decs))
	for i, d := range decs {
		args := make([]term.Term, 0, 2*m)
		for _, j := range alpha {
			args = append(args, d.rec.Args[j])
		}
		for _, j := range alpha {
			args = append(args, d.head.Args[j])
		}
		ris[i] = term.Rule{Head: term.NewAtom(stepPred, args...), Body: d.w.Clone()}
	}

	// rC: t(X̄, Z̄) ← t(X̄, Ȳ) ∧ t(Ȳ, Z̄).
	mk := func(prefix string) []term.Term {
		out := make([]term.Term, m)
		for i := range out {
			out[i] = term.Var(fmt.Sprintf("%s%d", prefix, i+1))
		}
		return out
	}
	xbar, ybar, zbar := mk("X"), mk("Y"), mk("Z")
	rc := term.Rule{
		Head: term.NewAtom(stepPred, append(append([]term.Term{}, xbar...), zbar...)...),
		Body: term.Formula{
			term.NewAtom(stepPred, append(append([]term.Term{}, xbar...), ybar...)...),
			term.NewAtom(stepPred, append(append([]term.Term{}, ybar...), zbar...)...),
		},
	}

	tr := &Transformed{
		Pred: pred, StepPred: stepPred, Alpha: alpha,
		RT: rt, RIs: ris, RC: rc,
	}
	tr.StepToPred = findStepMapping(tr, nonRec, n)
	return tr, nil
}

// findStepMapping attempts the modified transformation: a position map π
// from StepPred arguments to Pred arguments such that every rI is, under
// π, a variant of a non-recursive rule of Pred, bijectively. Returns nil
// when no such map exists (e.g. 2m ≠ n, or the bases differ).
func findStepMapping(tr *Transformed, nonRec []term.Rule, n int) []int {
	if len(tr.Alpha)*2 != n || len(tr.RIs) != len(nonRec) || len(nonRec) == 0 {
		return nil
	}
	// Candidate mappings come from matching the first rI against each
	// non-recursive rule; each match must then hold for all rIs under a
	// bijection.
	for _, cand := range candidateMappings(tr.RIs[0], nonRec, n) {
		if mappingCoversAll(tr, nonRec, cand) {
			return cand
		}
	}
	return nil
}

// candidateMappings finds position maps π making rI a variant of some
// non-recursive rule: π[j] = position in p of t's argument j.
func candidateMappings(ri term.Rule, nonRec []term.Rule, n int) [][]int {
	var out [][]int
	for _, nr := range nonRec {
		if len(nr.Body) != len(ri.Body) {
			continue
		}
		// Map t-head args onto p-head args via the variable correspondence
		// induced by matching the bodies.
		corr, ok := bodyCorrespondence(ri.Body, nr.Body)
		if !ok {
			continue
		}
		pi := make([]int, len(ri.Head.Args))
		used := make(map[int]bool)
		good := true
		for j, a := range ri.Head.Args {
			target, ok := corr[a]
			if !ok {
				good = false
				break
			}
			pos := -1
			for k, b := range nr.Head.Args {
				if b == target && !used[k] {
					pos = k
					break
				}
			}
			if pos < 0 {
				good = false
				break
			}
			pi[j] = pos
			used[pos] = true
		}
		if good && len(pi) == n {
			out = append(out, pi)
		}
	}
	return out
}

// bodyCorrespondence builds a bijective variable mapping making the two
// bodies equal atom-for-atom (in order).
func bodyCorrespondence(a, b term.Formula) (map[term.Term]term.Term, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	fwd := make(map[term.Term]term.Term)
	rev := make(map[term.Term]term.Term)
	for i := range a {
		if a[i].Pred != b[i].Pred || len(a[i].Args) != len(b[i].Args) {
			return nil, false
		}
		for j := range a[i].Args {
			x, y := a[i].Args[j], b[i].Args[j]
			if x.IsVar() != y.IsVar() {
				return nil, false
			}
			if !x.IsVar() {
				if x != y {
					return nil, false
				}
				continue
			}
			if prev, ok := fwd[x]; ok && prev != y {
				return nil, false
			}
			if prev, ok := rev[y]; ok && prev != x {
				return nil, false
			}
			fwd[x] = y
			rev[y] = x
		}
	}
	return fwd, true
}

// mappingCoversAll verifies that under π every rI is a variant of some
// non-recursive rule, bijectively.
func mappingCoversAll(tr *Transformed, nonRec []term.Rule, pi []int) bool {
	usedNR := make([]bool, len(nonRec))
	for _, ri := range tr.RIs {
		// Rewrite the rI head as a p-atom under π.
		args := make([]term.Term, len(pi))
		for j, pos := range pi {
			args[pos] = ri.Head.Args[j]
		}
		cand := term.Rule{Head: term.NewAtom(tr.Pred, args...), Body: ri.Body}
		found := false
		for k, nr := range nonRec {
			if usedNR[k] {
				continue
			}
			if isVariant(cand, nr) {
				usedNR[k] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IsVariant reports whether two rules are equal up to a bijective
// variable renaming (head and body, conjunct order sensitive). It is the
// matching used by the modified transformation (§5.3) and by the
// duplicate-rule analyzer.
func IsVariant(a, b term.Rule) bool { return isVariant(a, b) }

// isVariant reports whether two rules are equal up to a bijective
// variable renaming (head and body in order).
func isVariant(a, b term.Rule) bool {
	fa := append(term.Formula{a.Head}, a.Body...)
	fb := append(term.Formula{b.Head}, b.Body...)
	_, ok := bodyCorrespondence(fa, fb)
	return ok
}

// RewriteStepAtom renders a step-predicate atom as an atom of the
// original predicate under the modified transformation's mapping. It
// returns the input unchanged (and false) when the atom is not a step
// atom with a mapping.
func (res *Result) RewriteStepAtom(a term.Atom) (term.Atom, bool) {
	tr, ok := res.steps[a.Pred]
	if !ok || tr.StepToPred == nil {
		return a, false
	}
	args := make([]term.Term, len(tr.StepToPred))
	for j, pos := range tr.StepToPred {
		args[pos] = a.Args[j]
	}
	return term.NewAtom(tr.Pred, args...), true
}

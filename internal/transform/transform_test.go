package transform

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kdb/internal/eval"
	"kdb/internal/parser"
	"kdb/internal/storage"
	"kdb/internal/term"
)

func rules(t testing.TB, src string) []term.Rule {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Clauses
}

const priorIDB = `
prior(X, Y) :- prereq(X, Y).
prior(X, Y) :- prereq(X, Z), prior(Z, Y).
`

func TestTransformPriorStructure(t *testing.T) {
	res, err := Apply(rules(t, priorIDB))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.ByPred["prior"]
	if tr == nil {
		t.Fatal("prior must be transformed")
	}
	if tr.StepPred != "prior_step" {
		t.Errorf("StepPred = %q", tr.StepPred)
	}
	if !reflect.DeepEqual(tr.Alpha, []int{0}) {
		t.Errorf("Alpha = %v, want [0]", tr.Alpha)
	}
	// Paper §5.2: prior(X,Y) ← prior(Z,Y) ∧ t(Z,X) — up to renaming.
	if got, want := tr.RT.String(), "prior(Z1, X2) :- prior(X1, X2), prior_step(X1, Z1)."; got != want {
		t.Errorf("rT = %q, want %q", got, want)
	}
	// Paper §5.2: t(Z,X) ← prereq(X,Z).
	if len(tr.RIs) != 1 {
		t.Fatalf("RIs = %v", tr.RIs)
	}
	if got, want := tr.RIs[0].String(), "prior_step(Z, X) :- prereq(X, Z)."; got != want {
		t.Errorf("rI = %q, want %q", got, want)
	}
	// Paper §5.2: t(X,Y) ← t(X,Z) ∧ t(Z,Y).
	if got, want := tr.RC.String(), "prior_step(X1, Z1) :- prior_step(X1, Y1), prior_step(Y1, Z1)."; got != want {
		t.Errorf("rC = %q, want %q", got, want)
	}
	// Rule kinds are classified.
	if res.Kind(tr.RT) != KindRT || res.Kind(tr.RIs[0]) != KindRI || res.Kind(tr.RC) != KindRC {
		t.Error("rule kinds misclassified")
	}
	base := rules(t, `prior(X, Y) :- prereq(X, Y).`)[0]
	if res.Kind(base) != KindOrdinary {
		t.Error("base rule must be ordinary")
	}
	// The original recursive rule is gone; the base rule is kept.
	for _, r := range res.Rules {
		if r.Head.Pred == "prior" && len(r.Body) == 2 && r.Body[0].Pred == "prereq" {
			t.Errorf("original recursive rule survived: %v", r)
		}
	}
	// Step predicate lookup.
	if tr2, ok := res.IsStepPred("prior_step"); !ok || tr2 != tr {
		t.Error("IsStepPred must find prior_step")
	}
	if _, ok := res.IsStepPred("prior"); ok {
		t.Error("prior is not a step predicate")
	}
}

func TestModifiedTransformationMapping(t *testing.T) {
	res, err := Apply(rules(t, priorIDB))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.ByPred["prior"]
	// t(a, b) ≡ prior(b, a): mapping [1, 0].
	if !reflect.DeepEqual(tr.StepToPred, []int{1, 0}) {
		t.Fatalf("StepToPred = %v, want [1 0]", tr.StepToPred)
	}
	// RewriteStepAtom yields the paper's preferred rendering for Ex. 6:
	// t(databases, X) → prior(X, databases).
	got, ok := res.RewriteStepAtom(term.NewAtom("prior_step", term.Sym("databases"), term.Var("X")))
	if !ok {
		t.Fatal("rewrite must apply")
	}
	want := term.NewAtom("prior", term.Var("X"), term.Sym("databases"))
	if !got.Equal(want) {
		t.Errorf("rewrite = %v, want %v", got, want)
	}
	// Non-step atoms pass through.
	a := term.NewAtom("prereq", term.Var("X"), term.Var("Y"))
	if _, ok := res.RewriteStepAtom(a); ok {
		t.Error("non-step atom must not rewrite")
	}
}

func TestModifiedTransformationNotApplicable(t *testing.T) {
	// A same-generation-style predicate: base is not isomorphic to the
	// step relation (arity mismatch: 2m = 2 but the base body differs).
	res, err := Apply(rules(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.ByPred["sg"]
	if tr == nil {
		t.Fatal("sg must be transformed")
	}
	if len(tr.Alpha) != 2 {
		t.Errorf("Alpha = %v, want both positions", tr.Alpha)
	}
	if tr.StepToPred != nil {
		t.Errorf("modified transformation must not apply to sg, got %v", tr.StepToPred)
	}
}

func TestUntypedRulesExempted(t *testing.T) {
	res, err := Apply(rules(t, `
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
sym(X, Y) :- sym(Y, X).
sym(X, Y) :- base(X, Y).
`))
	if err != nil {
		t.Fatal(err)
	}
	if res.ByPred["reach"] == nil {
		t.Error("reach must be transformed")
	}
	if res.ByPred["sym"] != nil {
		t.Error("sym must not be transformed (untyped)")
	}
	if len(res.Untyped) != 1 || res.Untyped[0].Head.Pred != "sym" {
		t.Errorf("Untyped = %v", res.Untyped)
	}
	if !res.IsUntypedRule(res.Untyped[0]) {
		t.Error("IsUntypedRule must recognize the exempted rule")
	}
	// The untyped rule must survive verbatim in the output.
	found := false
	for _, r := range res.Rules {
		if r.Head.Pred == "sym" && len(r.Body) == 1 && r.Body[0].Pred == "sym" {
			found = true
		}
	}
	if !found {
		t.Error("untyped rule must be kept in the rule set")
	}
}

func TestMixedDisciplinePredicateFullyExempted(t *testing.T) {
	// One disciplined + one undisciplined recursive rule for the same
	// predicate: the whole predicate must be exempted.
	res, err := Apply(rules(t, `
r(X, Y) :- e(X, Y).
r(X, Y) :- e(X, Z), r(Z, Y).
r(X, Y) :- r(Y, X).
`))
	if err != nil {
		t.Fatal(err)
	}
	if res.ByPred["r"] != nil {
		t.Error("r must be fully exempted")
	}
	if len(res.Untyped) != 2 {
		t.Errorf("Untyped = %v, want both recursive rules", res.Untyped)
	}
}

func TestNonRecursiveProgramPassThrough(t *testing.T) {
	src := `
honor(X) :- student(X, Y, Z), Z > 3.7.
can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4).
`
	rs := rules(t, src)
	res, err := Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != len(rs) || len(res.ByPred) != 0 {
		t.Errorf("non-recursive program must pass through: %v", res.Rules)
	}
}

func TestMutualRecursionTransformed(t *testing.T) {
	res, err := Apply(rules(t, `
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`))
	if err != nil {
		t.Fatal(err)
	}
	// After strong-linearization, even (and possibly odd) become directly
	// recursive and transformable.
	if res.ByPred["even"] == nil && res.ByPred["odd"] == nil {
		t.Errorf("expected at least one of even/odd transformed; rules=%v untyped=%v", res.Rules, res.Untyped)
	}
}

// --- equivalence property tests (the §5.2 preservation theorem) ---

func extensionOf(t testing.TB, st *storage.Store, rs []term.Rule, q string) []string {
	t.Helper()
	pq, err := parser.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	r := pq.(*parser.Retrieve)
	res, err := eval.NewSemiNaive(eval.Input{Store: st, Rules: rs}).Retrieve(eval.Query{Subject: r.Subject, Where: r.Where})
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	return res.Strings()
}

func randomEdges(r *rand.Rand, pred string, nodes, edges int) *storage.Store {
	st := storage.NewMemory()
	for i := 0; i < edges; i++ {
		a := term.Sym(fmt.Sprintf("c%d", r.Intn(nodes)))
		b := term.Sym(fmt.Sprintf("c%d", r.Intn(nodes)))
		if _, err := st.InsertAtom(term.NewAtom(pred, a, b)); err != nil {
			panic(err)
		}
	}
	return st
}

// TestQuickTransformPreservesPrior: the transformed program computes the
// same extension of prior as the original, over random prereq EDBs.
func TestQuickTransformPreservesPrior(t *testing.T) {
	orig := rules(t, priorIDB)
	res, err := Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randomEdges(r, "prereq", 6, 9)
		a := extensionOf(t, st, orig, `retrieve prior(X, Y).`)
		b := extensionOf(t, st, res.Rules, `retrieve prior(X, Y).`)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: original %v != transformed %v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransformPreservesSameGeneration: a two-shared-position
// recursion (α = both positions) is also preserved.
func TestQuickTransformPreservesSameGeneration(t *testing.T) {
	orig := rules(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)
	res, err := Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := storage.NewMemory()
		for _, pred := range []string{"flat", "up", "down"} {
			for i := 0; i < 6; i++ {
				a := term.Sym(fmt.Sprintf("c%d", r.Intn(5)))
				b := term.Sym(fmt.Sprintf("c%d", r.Intn(5)))
				if _, err := st.InsertAtom(term.NewAtom(pred, a, b)); err != nil {
					panic(err)
				}
			}
		}
		a := extensionOf(t, st, orig, `retrieve sg(X, Y).`)
		b := extensionOf(t, st, res.Rules, `retrieve sg(X, Y).`)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: original %v != transformed %v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransformPreservesMutualRecursion: strong-linearization plus
// transformation preserves even/odd.
func TestQuickTransformPreservesMutualRecursion(t *testing.T) {
	orig := rules(t, `
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
`)
	res, err := Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := storage.NewMemory()
		n := 3 + r.Intn(8)
		if _, err := st.InsertAtom(term.NewAtom("zero", term.Sym("n0"))); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			if _, err := st.InsertAtom(term.NewAtom("succ",
				term.Sym(fmt.Sprintf("n%d", i)), term.Sym(fmt.Sprintf("n%d", i+1)))); err != nil {
				panic(err)
			}
		}
		a := extensionOf(t, st, orig, `retrieve even(X).`)
		b := extensionOf(t, st, res.Rules, `retrieve even(X).`)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: original %v != transformed %v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[RuleKind]string{KindOrdinary: "ordinary", KindRT: "rT", KindRI: "rI", KindRC: "rC"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkTransformApply(b *testing.B) {
	rs := rules(b, priorIDB+`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
honor(X) :- student(X, Y, Z), Z > 3.7.
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(rs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformedEvaluationOverhead(b *testing.B) {
	// DESIGN B4: evaluating prior through the transformed rules vs the
	// original recursion.
	orig := rules(b, priorIDB)
	res, err := Apply(orig)
	if err != nil {
		b.Fatal(err)
	}
	st := storage.NewMemory()
	for i := 0; i < 50; i++ {
		if _, err := st.InsertAtom(term.NewAtom("prereq",
			term.Sym(fmt.Sprintf("c%02d", i)), term.Sym(fmt.Sprintf("c%02d", i+1)))); err != nil {
			b.Fatal(err)
		}
	}
	pq, _ := parser.ParseQuery(`retrieve prior(X, Y).`)
	q := eval.Query{Subject: pq.(*parser.Retrieve).Subject}
	b.Run("original", func(b *testing.B) {
		e := eval.NewSemiNaive(eval.Input{Store: st, Rules: orig})
		for i := 0; i < b.N; i++ {
			if _, err := e.Retrieve(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transformed", func(b *testing.B) {
		e := eval.NewSemiNaive(eval.Input{Store: st, Rules: res.Rules})
		for i := 0; i < b.N; i++ {
			if _, err := e.Retrieve(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

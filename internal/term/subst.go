package term

import (
	"sort"
	"strconv"
	"strings"
)

// Subst is a substitution: a finite mapping from variables to terms.
// Substitutions produced by Unify are idempotent (no bound variable
// occurs in any binding's value), so Apply never needs to iterate.
//
// The zero value is the empty substitution and is ready to use for
// lookups; use make or New before writing.
type Subst map[Term]Term

// NewSubst returns an empty substitution with room for n bindings.
func NewSubst(n int) Subst { return make(Subst, n) }

// Clone returns an independent copy of the substitution.
func (s Subst) Clone() Subst {
	t := make(Subst, len(s))
	for k, v := range s {
		t[k] = v
	}
	return t
}

// Lookup resolves a term through the substitution. Constants map to
// themselves; unbound variables map to themselves.
func (s Subst) Lookup(t Term) Term {
	if !t.IsVar() {
		return t
	}
	if v, ok := s[t]; ok {
		return v
	}
	return t
}

// Walk resolves a term through possibly chained variable bindings
// (X→Y, Y→c). Unify keeps substitutions idempotent, but substitutions
// composed by callers may chain; Walk is safe for both.
func (s Subst) Walk(t Term) Term {
	for t.IsVar() {
		v, ok := s[t]
		if !ok || v == t {
			return t
		}
		t = v
	}
	return t
}

// Bind adds the binding v→t, normalizing the substitution so it remains
// idempotent: every existing binding whose value is v is rewritten to t.
// v must be a variable and must not already be bound.
func (s Subst) Bind(v, t Term) {
	for k, old := range s {
		if old == v {
			s[k] = t
		}
	}
	s[v] = t
}

// Apply returns the atom with the substitution applied to every argument.
// Chained bindings are followed.
func (s Subst) Apply(a Atom) Atom {
	if len(s) == 0 {
		return a
	}
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Walk(t)
	}
	return out
}

// ApplyFormula applies the substitution to every atom of the formula.
func (s Subst) ApplyFormula(f Formula) Formula {
	if len(s) == 0 {
		return f
	}
	out := make(Formula, len(f))
	for i, a := range f {
		out[i] = s.Apply(a)
	}
	return out
}

// ApplyRule applies the substitution to head and body.
func (s Subst) ApplyRule(r Rule) Rule {
	return Rule{Head: s.Apply(r.Head), Body: s.ApplyFormula(r.Body), Pos: r.Pos}
}

// Compose returns the composition s∘u: applying the result is equivalent
// to applying s first and then u. Neither input is modified.
func (s Subst) Compose(u Subst) Subst {
	out := make(Subst, len(s)+len(u))
	for k, v := range s {
		out[k] = u.Walk(v)
	}
	for k, v := range u {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// Restrict returns the sub-substitution covering only the given variables.
func (s Subst) Restrict(vars []Term) Subst {
	out := make(Subst, len(vars))
	for _, v := range vars {
		if t := s.Walk(v); t != v {
			out[v] = t
		}
	}
	return out
}

// Equal reports whether two substitutions contain the same bindings.
func (s Subst) Equal(u Subst) bool {
	if len(s) != len(u) {
		return false
	}
	for k, v := range s {
		if w, ok := u[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// String renders the substitution deterministically as {X→a, Y→b}.
func (s Subst) String() string {
	keys := make([]Term, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
		b.WriteString("→")
		b.WriteString(s[k].String())
	}
	b.WriteByte('}')
	return b.String()
}

// Unify computes a most general unifier of atoms a and b, extending base
// (which may be nil). It returns the extended substitution and true on
// success. base is never modified; on success the result is a fresh
// idempotent substitution. The term language has no function symbols, so
// no occurs check is needed.
func Unify(a, b Atom, base Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = NewSubst(len(a.Args))
	}
	for i := range a.Args {
		x := s.Walk(a.Args[i])
		y := s.Walk(b.Args[i])
		switch {
		case x == y:
			// Already identical.
		case x.IsVar():
			s.Bind(x, y)
		case y.IsVar():
			s.Bind(y, x)
		default:
			return nil, false
		}
	}
	return s, true
}

// Match computes a one-way matcher θ such that θ(pattern) == ground,
// extending base. Variables in ground are treated as constants: they may
// be the image of a pattern variable but are never bound themselves.
// It returns the extended substitution and true on success.
func Match(pattern, ground Atom, base Subst) (Subst, bool) {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = NewSubst(len(pattern.Args))
	}
	for i := range pattern.Args {
		p := s.Walk(pattern.Args[i])
		g := ground.Args[i]
		switch {
		case p == g:
		case p.IsVar():
			s.Bind(p, g)
		default:
			return nil, false
		}
	}
	return s, true
}

// Renamer generates fresh variable names. The zero value is ready to use;
// a single Renamer must not be shared between goroutines.
type Renamer struct {
	n int
}

// Fresh returns a new variable guaranteed distinct from all variables the
// renamer has produced. The base name is preserved for readability:
// X becomes X_1, X_2, ….
func (r *Renamer) Fresh(base string) Term {
	r.n++
	if i := strings.IndexByte(base, '_'); i > 0 {
		// Strip a previous rename suffix so names do not snowball.
		if _, err := strconv.Atoi(base[i+1:]); err == nil {
			base = base[:i]
		}
	}
	return Var(base + "_" + strconv.Itoa(r.n))
}

// RenameRule returns a variant of the rule with every variable replaced by
// a fresh one, as required before resolving a program rule against a goal
// (the paper's footnote 3).
func (r *Renamer) RenameRule(rule Rule) Rule {
	vars := rule.Vars()
	if len(vars) == 0 {
		return rule
	}
	s := NewSubst(len(vars))
	for _, v := range vars {
		s[v] = r.Fresh(v.Name())
	}
	return s.ApplyRule(rule)
}

// RenameFormula returns a variant of the formula with fresh variables and
// the substitution used, so callers can rename related formulas
// consistently.
func (r *Renamer) RenameFormula(f Formula) (Formula, Subst) {
	vars := f.Vars()
	s := NewSubst(len(vars))
	for _, v := range vars {
		s[v] = r.Fresh(v.Name())
	}
	return s.ApplyFormula(f), s
}

// Package term implements the first-order term language of the paper
// "Querying Database Knowledge" (Motro & Yuan, SIGMOD 1990), Section 2.1:
// constants, variables, atomic formulas (atoms), Horn-clause rules, and
// positive formulas (conjunctions of atoms), together with substitutions,
// unification, one-way matching, and variable renaming.
//
// The language is function-free (Datalog): the only terms are constants
// and variables. Following the paper's convention, a variable name begins
// with an upper-case letter and a symbolic constant with a lower-case
// letter; numeric and quoted-string constants are also supported because
// the paper's example database compares grade-point averages.
package term

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Term.
type Kind uint8

const (
	// KindVar is a logical variable.
	KindVar Kind = iota
	// KindSymbol is an uninterpreted constant such as `databases`.
	KindSymbol
	// KindNumber is a numeric constant such as `3.7`.
	KindNumber
	// KindString is a quoted string constant such as `"Susan B."`.
	KindString
)

// Term is a constant or a variable. Terms are immutable values; two terms
// are interchangeable exactly when they are == comparable-equal.
type Term struct {
	kind Kind
	// name holds the variable name, symbol text, or string contents.
	name string
	// num holds the numeric value when kind == KindNumber.
	num float64
}

// Var returns a variable term with the given name. Variable names are
// nonempty and by convention begin with an upper-case letter or '_',
// but the constructor does not enforce the convention: the parser does.
func Var(name string) Term { return Term{kind: KindVar, name: name} }

// Sym returns a symbolic constant.
func Sym(name string) Term { return Term{kind: KindSymbol, name: name} }

// Num returns a numeric constant.
func Num(v float64) Term { return Term{kind: KindNumber, num: v} }

// Str returns a string constant.
func Str(s string) Term { return Term{kind: KindString, name: s} }

// Kind reports the kind of the term.
func (t Term) Kind() Kind { return t.kind }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.kind == KindVar }

// IsConst reports whether the term is any constant.
func (t Term) IsConst() bool { return t.kind != KindVar }

// Name returns the variable name, symbol text, or string contents.
// It is meaningless for numbers.
func (t Term) Name() string { return t.name }

// Float returns the numeric value of a KindNumber term.
func (t Term) Float() float64 { return t.num }

// String renders the term in surface syntax.
func (t Term) String() string {
	switch t.kind {
	case KindVar:
		return t.name
	case KindSymbol:
		return t.name
	case KindNumber:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	case KindString:
		return strconv.Quote(t.name)
	default:
		return fmt.Sprintf("<bad term kind %d>", t.kind)
	}
}

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool { return t == u }

// Compare totally orders terms: variables < symbols < numbers < strings,
// then by value. The order is arbitrary but deterministic; it is used to
// canonicalize formulas for set semantics and stable output.
func (t Term) Compare(u Term) int {
	if t.kind != u.kind {
		return int(t.kind) - int(u.kind)
	}
	switch t.kind {
	case KindNumber:
		switch {
		case t.num < u.num:
			return -1
		case t.num > u.num:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(t.name, u.name)
	}
}

// Atom is an atomic formula: a predicate symbol applied to a list of
// argument terms. The empty argument list is permitted (propositional
// atoms). Atoms are treated as immutable; all transforming operations
// return fresh atoms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom. The argument slice is copied so callers may
// reuse their backing arrays.
func NewAtom(pred string, args ...Term) Atom {
	cp := make([]Term, len(args))
	copy(cp, args)
	return Atom{Pred: pred, Args: cp}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Functor returns the conventional name/arity identifier, e.g. "student/3".
func (a Atom) Functor() string { return a.Pred + "/" + strconv.Itoa(len(a.Args)) }

// String renders the atom in surface syntax. Binary comparison atoms are
// rendered infix, matching the paper's presentation, e.g. `Z > 3.7`.
func (a Atom) String() string {
	if len(a.Args) == 2 && IsComparisonPred(a.Pred) {
		return fmt.Sprintf("%s %s %s", a.Args[0], a.Pred, a.Args[1])
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	if len(a.Args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Compare totally orders atoms by predicate, arity, then arguments.
func (a Atom) Compare(b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if c := len(a.Args) - len(b.Args); c != 0 {
		return c
	}
	for i := range a.Args {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Key returns a string that uniquely identifies the atom's structure.
// It is suitable as a map key for memoization and duplicate elimination.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	for _, t := range a.Args {
		b.WriteByte('\x00')
		b.WriteByte(byte('0' + t.kind))
		b.WriteString(t.String())
	}
	return b.String()
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the variables of the atom to dst in order of first
// occurrence (dst may be nil) and returns the extended slice. Duplicates
// already present in dst are not re-added.
func (a Atom) Vars(dst []Term) []Term {
	for _, t := range a.Args {
		if t.IsVar() && !containsTerm(dst, t) {
			dst = append(dst, t)
		}
	}
	return dst
}

func containsTerm(ts []Term, t Term) bool {
	for _, u := range ts {
		if u == t {
			return true
		}
	}
	return false
}

// Formula is a positive formula: a conjunction of atoms (paper §2.1).
// The empty formula is the trivially true body.
type Formula []Atom

// Vars returns the variables of the formula in order of first occurrence.
func (f Formula) Vars() []Term {
	var vs []Term
	for _, a := range f {
		vs = a.Vars(vs)
	}
	return vs
}

// String renders the conjunction with the paper's "and" connective.
func (f Formula) String() string {
	if len(f) == 0 {
		return "true"
	}
	parts := make([]string, len(f))
	for i, a := range f {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

// Equal reports whether two formulas are identical atom-for-atom
// (order-sensitive).
func (f Formula) Equal(g Formula) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if !f[i].Equal(g[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the formula.
func (f Formula) Clone() Formula {
	g := make(Formula, len(f))
	for i, a := range f {
		g[i] = NewAtom(a.Pred, a.Args...)
	}
	return g
}

// Key returns a canonical key for the formula as an (ordered) conjunction.
func (f Formula) Key() string {
	parts := make([]string, len(f))
	for i, a := range f {
		parts[i] = a.Key()
	}
	return strings.Join(parts, "\x01")
}

// SetKey returns a canonical key for the formula as a *set* of atoms:
// two formulas that differ only in conjunct order or duplication share a
// SetKey.
func (f Formula) SetKey() string {
	parts := make([]string, 0, len(f))
	seen := make(map[string]bool, len(f))
	for _, a := range f {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			parts = append(parts, k)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// Pos is an optional source position: the file, line and column of the
// clause head as recorded by the parser. The zero Pos means "unknown"
// (rules built programmatically). Pos is carried alongside a Rule for
// diagnostics only: it participates in neither Equal, String, nor Key.
type Pos struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// IsValid reports whether the position is known.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "file:line:col" ("line:col" without a file; "-" when
// unknown).
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Rule is a Horn clause of the paper's first form: head ← body, where the
// body is a (possibly empty) positive formula. A rule with an empty body
// and no variables is a fact.
type Rule struct {
	Head Atom
	Body Formula
	// Pos is the source position of the clause head, when known. It is
	// metadata: Equal, String and Key ignore it, so two rules differing
	// only in Pos are interchangeable everywhere but in diagnostics.
	Pos Pos
}

// NewRule constructs a rule, copying both head arguments and body.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: NewAtom(head.Pred, head.Args...), Body: Formula(body).Clone()}
}

// At returns a copy of the rule carrying the given source position.
func (r Rule) At(pos Pos) Rule {
	r.Pos = pos
	return r
}

// IsFact reports whether the rule is a ground fact.
func (r Rule) IsFact() bool { return len(r.Body) == 0 && r.Head.IsGround() }

// String renders the rule in surface syntax: `head :- body.` or `head.`.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Equal reports structural equality of rules (order-sensitive bodies).
func (r Rule) Equal(s Rule) bool {
	return r.Head.Equal(s.Head) && r.Body.Equal(s.Body)
}

// Vars returns all variables of the rule in order of first occurrence,
// head first.
func (r Rule) Vars() []Term {
	vs := r.Head.Vars(nil)
	for _, a := range r.Body {
		vs = a.Vars(vs)
	}
	return vs
}

// Key returns a canonical key for the rule.
func (r Rule) Key() string { return r.Head.Key() + "\x02" + r.Body.Key() }

// Comparison predicate names recognized by the system. These form the set
// R of built-in predicates in the paper's example database (§2.2).
const (
	PredEq = "="
	PredNe = "!="
	PredLt = "<"
	PredLe = "<="
	PredGt = ">"
	PredGe = ">="
)

// IsComparisonPred reports whether pred is one of the built-in binary
// comparison predicates.
func IsComparisonPred(pred string) bool {
	switch pred {
	case PredEq, PredNe, PredLt, PredLe, PredGt, PredGe:
		return true
	}
	return false
}

// IsComparison reports whether the atom is a built-in binary comparison.
func IsComparison(a Atom) bool {
	return len(a.Args) == 2 && IsComparisonPred(a.Pred)
}

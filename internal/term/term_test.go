package term

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndAccessors(t *testing.T) {
	v := Var("X")
	if !v.IsVar() || v.IsConst() || v.Name() != "X" || v.Kind() != KindVar {
		t.Errorf("Var(X) = %#v", v)
	}
	s := Sym("databases")
	if s.IsVar() || !s.IsConst() || s.Name() != "databases" || s.Kind() != KindSymbol {
		t.Errorf("Sym(databases) = %#v", s)
	}
	n := Num(3.7)
	if n.IsVar() || n.Float() != 3.7 || n.Kind() != KindNumber {
		t.Errorf("Num(3.7) = %#v", n)
	}
	q := Str("Susan B.")
	if q.IsVar() || q.Name() != "Susan B." || q.Kind() != KindString {
		t.Errorf("Str = %#v", q)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Var("X"), "X"},
		{Sym("databases"), "databases"},
		{Num(3.7), "3.7"},
		{Num(4), "4"},
		{Str("a b"), `"a b"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermEqualAndCompare(t *testing.T) {
	if !Var("X").Equal(Var("X")) {
		t.Error("identical variables must be equal")
	}
	if Var("X").Equal(Sym("X")) {
		t.Error("variable and symbol with same spelling must differ")
	}
	if Num(1).Equal(Num(2)) {
		t.Error("distinct numbers must differ")
	}
	// Compare is a total order: antisymmetric and consistent with Equal.
	terms := []Term{Var("A"), Var("Z"), Sym("a"), Sym("z"), Num(-1), Num(0), Num(2.5), Str(""), Str("x")}
	for _, a := range terms {
		for _, b := range terms {
			ca, cb := a.Compare(b), b.Compare(a)
			if (ca == 0) != a.Equal(b) {
				t.Errorf("Compare(%v,%v)=0 inconsistent with Equal", a, b)
			}
			if ca > 0 && cb >= 0 || ca < 0 && cb <= 0 {
				t.Errorf("Compare(%v,%v)=%d but Compare(%v,%v)=%d", a, b, ca, b, a, cb)
			}
		}
	}
}

func TestAtomBasics(t *testing.T) {
	args := []Term{Var("X"), Sym("math"), Num(3.9)}
	a := NewAtom("student", args...)
	args[0] = Sym("mutated") // NewAtom must have copied
	if !a.Args[0].IsVar() {
		t.Error("NewAtom must copy its argument slice")
	}
	if a.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", a.Arity())
	}
	if a.Functor() != "student/3" {
		t.Errorf("Functor = %q", a.Functor())
	}
	if got, want := a.String(), "student(X, math, 3.9)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if a.IsGround() {
		t.Error("atom with a variable is not ground")
	}
	if !NewAtom("p", Sym("a"), Num(1)).IsGround() {
		t.Error("constant atom must be ground")
	}
}

func TestAtomComparisonRendering(t *testing.T) {
	a := NewAtom(">", Var("Z"), Num(3.7))
	if got, want := a.String(), "Z > 3.7"; got != want {
		t.Errorf("comparison String = %q, want %q", got, want)
	}
	if !IsComparison(a) {
		t.Error("IsComparison must recognize binary >")
	}
	if IsComparison(NewAtom(">", Var("X"))) {
		t.Error("unary > is not a comparison atom")
	}
	if IsComparison(NewAtom("p", Var("X"), Var("Y"))) {
		t.Error("p/2 is not a comparison atom")
	}
	for _, p := range []string{"=", "!=", "<", "<=", ">", ">="} {
		if !IsComparisonPred(p) {
			t.Errorf("IsComparisonPred(%q) = false", p)
		}
	}
	if IsComparisonPred("==") || IsComparisonPred("p") {
		t.Error("IsComparisonPred accepted a non-comparison")
	}
}

func TestAtomEqualCompareKey(t *testing.T) {
	a := NewAtom("p", Var("X"), Sym("a"))
	b := NewAtom("p", Var("X"), Sym("a"))
	c := NewAtom("p", Var("Y"), Sym("a"))
	d := NewAtom("q", Var("X"), Sym("a"))
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Atom.Equal misbehaves")
	}
	if a.Compare(b) != 0 || a.Compare(c) == 0 || a.Compare(d) >= 0 {
		t.Error("Atom.Compare misbehaves")
	}
	if a.Key() != b.Key() {
		t.Error("equal atoms must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("distinct atoms must not share a key")
	}
	// Keys must distinguish a variable X from a symbol X.
	if NewAtom("p", Var("X")).Key() == NewAtom("p", Sym("X")).Key() {
		t.Error("key must encode term kind")
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("p", Var("X"), Sym("a"), Var("Y"), Var("X"))
	vs := a.Vars(nil)
	want := []Term{Var("X"), Var("Y")}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars = %v, want %v", vs, want)
	}
	// Appending to an existing list must not duplicate.
	vs = a.Vars([]Term{Var("Y")})
	want = []Term{Var("Y"), Var("X")}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars with prefix = %v, want %v", vs, want)
	}
}

func TestFormulaBasics(t *testing.T) {
	f := Formula{
		NewAtom("student", Var("X"), Var("Y"), Var("Z")),
		NewAtom(">", Var("Z"), Num(3.7)),
	}
	if got, want := f.String(), "student(X, Y, Z) and Z > 3.7"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Formula{}).String(); got != "true" {
		t.Errorf("empty formula String = %q, want true", got)
	}
	vs := f.Vars()
	want := []Term{Var("X"), Var("Y"), Var("Z")}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars = %v, want %v", vs, want)
	}
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("clone must equal original")
	}
	g[0].Args[0] = Sym("a")
	if f[0].Args[0] != Var("X") {
		t.Error("Clone must deep-copy atom arguments")
	}
}

func TestFormulaSetKey(t *testing.T) {
	p := NewAtom("p", Var("X"))
	q := NewAtom("q", Var("X"))
	if (Formula{p, q}).SetKey() != (Formula{q, p}).SetKey() {
		t.Error("SetKey must be order-insensitive")
	}
	if (Formula{p, q, p}).SetKey() != (Formula{p, q}).SetKey() {
		t.Error("SetKey must be duplication-insensitive")
	}
	if (Formula{p, q}).Key() == (Formula{q, p}).Key() {
		t.Error("Key must be order-sensitive")
	}
	if (Formula{p}).SetKey() == (Formula{q}).SetKey() {
		t.Error("distinct formulas must have distinct SetKeys")
	}
}

func TestRuleBasics(t *testing.T) {
	head := NewAtom("honor", Var("X"))
	body := []Atom{
		NewAtom("student", Var("X"), Var("Y"), Var("Z")),
		NewAtom(">", Var("Z"), Num(3.7)),
	}
	r := NewRule(head, body...)
	if got, want := r.String(), "honor(X) :- student(X, Y, Z), Z > 3.7."; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if r.IsFact() {
		t.Error("rule with body is not a fact")
	}
	f := NewRule(NewAtom("student", Sym("ann"), Sym("math"), Num(3.9)))
	if !f.IsFact() {
		t.Error("ground bodiless rule is a fact")
	}
	if got, want := f.String(), "student(ann, math, 3.9)."; got != want {
		t.Errorf("fact String = %q, want %q", got, want)
	}
	nf := NewRule(NewAtom("p", Var("X")))
	if nf.IsFact() {
		t.Error("bodiless rule with variables is not a fact")
	}
	vs := r.Vars()
	want := []Term{Var("X"), Var("Y"), Var("Z")}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars = %v, want %v", vs, want)
	}
	if r.Key() == f.Key() {
		t.Error("distinct rules must have distinct keys")
	}
	if !r.Equal(NewRule(head, body...)) {
		t.Error("identically constructed rules must be equal")
	}
}

// --- substitutions ---

func TestSubstLookupWalkBind(t *testing.T) {
	s := NewSubst(2)
	s.Bind(Var("X"), Var("Y"))
	s.Bind(Var("Y"), Sym("a"))
	// Bind keeps the substitution idempotent: X's image is rewritten.
	if got := s.Lookup(Var("X")); got != Sym("a") {
		t.Errorf("Lookup(X) = %v, want a", got)
	}
	if got := s.Walk(Var("X")); got != Sym("a") {
		t.Errorf("Walk(X) = %v, want a", got)
	}
	if got := s.Lookup(Sym("b")); got != Sym("b") {
		t.Error("constants must map to themselves")
	}
	if got := s.Lookup(Var("Q")); got != Var("Q") {
		t.Error("unbound variables must map to themselves")
	}
}

func TestSubstApply(t *testing.T) {
	s := Subst{Var("X"): Sym("ann"), Var("Z"): Num(3.9)}
	a := NewAtom("student", Var("X"), Var("Y"), Var("Z"))
	got := s.Apply(a)
	want := NewAtom("student", Sym("ann"), Var("Y"), Num(3.9))
	if !got.Equal(want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
	// The original atom must be untouched.
	if !a.Args[0].IsVar() {
		t.Error("Apply must not mutate its input")
	}
	r := NewRule(NewAtom("honor", Var("X")), NewAtom(">", Var("Z"), Num(3.7)))
	rr := s.ApplyRule(r)
	if rr.Head.Args[0] != Sym("ann") || rr.Body[0].Args[0] != Num(3.9) {
		t.Errorf("ApplyRule = %v", rr)
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{Var("X"): Var("Y")}
	u := Subst{Var("Y"): Sym("a"), Var("Z"): Sym("b")}
	c := s.Compose(u)
	if c.Walk(Var("X")) != Sym("a") {
		t.Errorf("compose: X ↦ %v, want a", c.Walk(Var("X")))
	}
	if c.Walk(Var("Z")) != Sym("b") {
		t.Errorf("compose: Z ↦ %v, want b", c.Walk(Var("Z")))
	}
	// s and u unchanged.
	if s.Walk(Var("X")) != Var("Y") || len(u) != 2 {
		t.Error("Compose must not modify its operands")
	}
}

func TestSubstRestrictEqualStringClone(t *testing.T) {
	s := Subst{Var("X"): Sym("a"), Var("Y"): Sym("b")}
	r := s.Restrict([]Term{Var("X"), Var("Q")})
	if len(r) != 1 || r[Var("X")] != Sym("a") {
		t.Errorf("Restrict = %v", r)
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone must equal original")
	}
	if s.Equal(r) {
		t.Error("different substitutions must not be Equal")
	}
	if got, want := s.String(), "{X→a, Y→b}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	c := s.Clone()
	c[Var("X")] = Sym("z")
	if s[Var("X")] != Sym("a") {
		t.Error("Clone must be independent")
	}
}

func TestUnifyBasics(t *testing.T) {
	cases := []struct {
		a, b Atom
		ok   bool
	}{
		{NewAtom("p", Var("X")), NewAtom("p", Sym("a")), true},
		{NewAtom("p", Sym("a")), NewAtom("p", Var("X")), true},
		{NewAtom("p", Var("X")), NewAtom("p", Var("Y")), true},
		{NewAtom("p", Sym("a")), NewAtom("p", Sym("a")), true},
		{NewAtom("p", Sym("a")), NewAtom("p", Sym("b")), false},
		{NewAtom("p", Var("X")), NewAtom("q", Var("X")), false},
		{NewAtom("p", Var("X")), NewAtom("p", Var("X"), Var("Y")), false},
		{NewAtom("p", Var("X"), Var("X")), NewAtom("p", Sym("a"), Sym("b")), false},
		{NewAtom("p", Var("X"), Var("X")), NewAtom("p", Sym("a"), Sym("a")), true},
		{NewAtom("p", Var("X"), Var("Y")), NewAtom("p", Var("Y"), Sym("a")), true},
	}
	for _, c := range cases {
		s, ok := Unify(c.a, c.b, nil)
		if ok != c.ok {
			t.Errorf("Unify(%v, %v) ok = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && !s.Apply(c.a).Equal(s.Apply(c.b)) {
			t.Errorf("Unify(%v, %v) = %v is not a unifier", c.a, c.b, s)
		}
	}
}

func TestUnifyChained(t *testing.T) {
	// p(X, Y, X) with p(Y, a, Z): X=Y, Y=a ⇒ all of X,Y,Z = a.
	a := NewAtom("p", Var("X"), Var("Y"), Var("X"))
	b := NewAtom("p", Var("Y"), Sym("a"), Var("Z"))
	s, ok := Unify(a, b, nil)
	if !ok {
		t.Fatal("expected unification to succeed")
	}
	for _, v := range []Term{Var("X"), Var("Y"), Var("Z")} {
		if got := s.Walk(v); got != Sym("a") {
			t.Errorf("%v ↦ %v, want a", v, got)
		}
	}
}

func TestUnifyWithBase(t *testing.T) {
	base := Subst{Var("X"): Sym("a")}
	_, ok := Unify(NewAtom("p", Var("X")), NewAtom("p", Sym("b")), base)
	if ok {
		t.Error("base binding X=a must block unification with b")
	}
	s, ok := Unify(NewAtom("p", Var("X")), NewAtom("p", Sym("a")), base)
	if !ok || s.Walk(Var("X")) != Sym("a") {
		t.Error("base binding X=a must allow unification with a")
	}
	if len(base) != 1 {
		t.Error("Unify must not modify base")
	}
}

func TestMatch(t *testing.T) {
	pat := NewAtom("p", Var("X"), Sym("a"), Var("X"))
	if s, ok := Match(pat, NewAtom("p", Sym("b"), Sym("a"), Sym("b")), nil); !ok || s.Walk(Var("X")) != Sym("b") {
		t.Error("Match must bind pattern variables")
	}
	if _, ok := Match(pat, NewAtom("p", Sym("b"), Sym("a"), Sym("c")), nil); ok {
		t.Error("Match must respect repeated variables")
	}
	if _, ok := Match(pat, NewAtom("p", Sym("b"), Sym("z"), Sym("b")), nil); ok {
		t.Error("Match must respect constants in the pattern")
	}
	// One-way: a variable in the target must not be bound.
	if _, ok := Match(NewAtom("p", Sym("a")), NewAtom("p", Var("Y")), nil); ok {
		t.Error("Match must not bind variables of the target")
	}
	// But a pattern variable may map to a target variable.
	if s, ok := Match(NewAtom("p", Var("X")), NewAtom("p", Var("Y")), nil); !ok || s.Walk(Var("X")) != Var("Y") {
		t.Error("pattern variable should match target variable")
	}
}

func TestRenamer(t *testing.T) {
	var rn Renamer
	r := NewRule(NewAtom("p", Var("X"), Var("Y")), NewAtom("q", Var("Y"), Var("Z")))
	v1 := rn.RenameRule(r)
	v2 := rn.RenameRule(r)
	seen := map[Term]bool{}
	for _, v := range append(v1.Vars(), v2.Vars()...) {
		if seen[v] {
			t.Errorf("renamed variable %v reused across variants", v)
		}
		seen[v] = true
	}
	// Structure preserved: renaming is invertible by unification.
	if _, ok := Unify(r.Head, v1.Head, nil); !ok {
		t.Error("renamed head no longer unifies with original")
	}
	// Shared variables stay shared: Y in head and body map to same fresh var.
	if v1.Head.Args[1] != v1.Body[0].Args[0] {
		t.Error("renaming must preserve variable sharing")
	}
	// Names must not snowball: renaming X_3 again yields X_n, not X_3_n.
	f := Var("X_3")
	fresh := rn.Fresh(f.Name())
	if len(fresh.Name()) > len("X_9999") {
		t.Errorf("fresh name %q snowballed", fresh.Name())
	}
}

func TestRenameFormula(t *testing.T) {
	var rn Renamer
	f := Formula{NewAtom("p", Var("X")), NewAtom("q", Var("X"), Var("Y"))}
	g, s := rn.RenameFormula(f)
	if g[0].Args[0] == Var("X") {
		t.Error("variables must be renamed")
	}
	if g[0].Args[0] != g[1].Args[0] {
		t.Error("sharing must be preserved")
	}
	if s.Walk(Var("X")) != g[0].Args[0] {
		t.Error("returned substitution must record the renaming")
	}
}

// --- property-based tests ---

// genAtom builds a random atom over a small vocabulary.
func genAtom(r *rand.Rand) Atom {
	preds := []string{"p", "q", "r"}
	pool := []Term{Var("X"), Var("Y"), Var("Z"), Sym("a"), Sym("b"), Num(1), Num(2)}
	n := r.Intn(4)
	args := make([]Term, n)
	for i := range args {
		args[i] = pool[r.Intn(len(pool))]
	}
	return NewAtom(preds[r.Intn(len(preds))], args...)
}

// TestQuickUnifyIsUnifier: whenever Unify succeeds, applying the result to
// both atoms yields identical atoms (the defining property of a unifier).
func TestQuickUnifyIsUnifier(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAtom(r), genAtom(r)
		s, ok := Unify(a, b, nil)
		if !ok {
			return true
		}
		return s.Apply(a).Equal(s.Apply(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnifyMostGeneral: any other unifier factors through the MGU.
// We verify a practical consequence: if u unifies a and b, then u also
// unifies mgu(a) with a (i.e. the MGU instance subsumes every unified
// instance via matching).
func TestQuickUnifyMostGeneral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAtom(r), genAtom(r)
		mgu, ok := Unify(a, b, nil)
		if !ok {
			return true
		}
		// Build some ground unifier candidate by grounding all vars to a.
		g := NewSubst(4)
		for _, v := range append(a.Vars(nil), b.Vars(nil)...) {
			g[v] = Sym("c")
		}
		ga, gb := g.Apply(a), g.Apply(b)
		if !ga.Equal(gb) {
			return true // grounding isn't a unifier for this pair; nothing to check
		}
		// The MGU instance must match onto the ground instance.
		_, ok = Match(mgu.Apply(a), ga, nil)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnifySymmetric: Unify(a,b) succeeds iff Unify(b,a) succeeds.
func TestQuickUnifySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAtom(r), genAtom(r)
		_, ok1 := Unify(a, b, nil)
		_, ok2 := Unify(b, a, nil)
		return ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickComposeAssociates: applying Compose(s,u) equals applying s then u.
func TestQuickComposeAssociates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genAtom(r)
		s := Subst{Var("X"): Var("Y")}
		u := Subst{Var("Y"): Sym("a"), Var("Z"): Num(1)}
		left := s.Compose(u).Apply(a)
		right := u.Apply(s.Apply(a))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMatchImpliesUnify: a successful match is a successful unification.
func TestQuickMatchImpliesUnify(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAtom(r), genAtom(r)
		if _, ok := Match(a, b, nil); ok {
			_, ok2 := Unify(a, b, nil)
			return ok2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortStability: Compare induces a deterministic order on atoms.
func TestQuickSortStability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		atoms := make([]Atom, 8)
		for i := range atoms {
			atoms[i] = genAtom(r)
		}
		a := append([]Atom(nil), atoms...)
		b := append([]Atom(nil), atoms...)
		rand.New(rand.NewSource(seed+1)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		sort.Slice(a, func(i, j int) bool { return a[i].Compare(a[j]) < 0 })
		sort.Slice(b, func(i, j int) bool { return b[i].Compare(b[j]) < 0 })
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnifyGround(b *testing.B) {
	x := NewAtom("complete", Sym("ann"), Sym("databases"), Sym("f89"), Num(4))
	y := NewAtom("complete", Sym("ann"), Sym("databases"), Sym("f89"), Num(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Unify(x, y, nil); !ok {
			b.Fatal("unify failed")
		}
	}
}

func BenchmarkUnifyVariables(b *testing.B) {
	x := NewAtom("complete", Var("S"), Var("C"), Var("Sem"), Var("G"))
	y := NewAtom("complete", Sym("ann"), Sym("databases"), Sym("f89"), Num(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Unify(x, y, nil); !ok {
			b.Fatal("unify failed")
		}
	}
}

func BenchmarkSubstApplyRule(b *testing.B) {
	s := Subst{Var("X"): Sym("ann"), Var("Y"): Sym("databases"), Var("Z"): Sym("f89")}
	r := NewRule(
		NewAtom("can_ta", Var("X"), Var("Y")),
		NewAtom("honor", Var("X")),
		NewAtom("complete", Var("X"), Var("Y"), Var("Z"), Var("U")),
		NewAtom(">", Var("U"), Num(3.3)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ApplyRule(r)
	}
}

func BenchmarkRenameRule(b *testing.B) {
	var rn Renamer
	r := NewRule(
		NewAtom("can_ta", Var("X"), Var("Y")),
		NewAtom("honor", Var("X")),
		NewAtom("complete", Var("X"), Var("Y"), Var("Z"), Var("U")),
		NewAtom("taught", Var("V"), Var("Y"), Var("Z"), Var("W")),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rn.RenameRule(r)
	}
}

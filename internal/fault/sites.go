package fault

import "sort"

// The failpoint catalog: every site compiled into the tree, one
// constant per fragile operation. Enable rejects names outside this
// list so a misspelled site cannot silently test nothing. DESIGN §5g
// documents what each site guards and which outcomes it honors.
const (
	// SiteWALAppend guards framing one record into the write-ahead
	// log. It is the one torn-write-capable site: a TornBytes outcome
	// persists only a prefix of the frame and poisons the log, as if
	// the process had died mid-write.
	SiteWALAppend = "storage/wal.append"
	// SiteWALFlush guards draining the WAL's buffered writer.
	SiteWALFlush = "storage/wal.flush"
	// SiteWALSync guards the WAL file fsync.
	SiteWALSync = "storage/wal.sync"
	// SiteWALOpen guards opening (or creating) the log file.
	SiteWALOpen = "storage/wal.open"
	// SiteWALReplay guards each record applied during recovery.
	SiteWALReplay = "storage/wal.replay"
	// SiteSnapshotWrite guards starting a snapshot (temp-file create
	// and record writes).
	SiteSnapshotWrite = "storage/snapshot.write"
	// SiteSnapshotSync guards the snapshot temp-file fsync.
	SiteSnapshotSync = "storage/snapshot.sync"
	// SiteSnapshotRename guards the atomic rename that publishes a
	// snapshot.
	SiteSnapshotRename = "storage/snapshot.rename"
	// SiteWALRewind guards the truncate-to-durable-offset rewind after
	// a failed append: a fault here poisons the log (the on-disk state
	// is unknown), exactly as a real rewind failure would.
	SiteWALRewind = "storage/wal.rewind"
	// SiteDirSync guards directory fsyncs (snapshot publish, WAL
	// creation).
	SiteDirSync = "storage/dir.sync"
	// SiteSnapshotSweep guards the crash-orphan sweep at store open; a
	// fault here models an unreadable directory, leaving kdb.snap.tmp*
	// orphans for the next open.
	SiteSnapshotSweep = "storage/snapshot.sweep"
	// SiteStoreOpen guards opening a durable store (before recovery).
	SiteStoreOpen = "storage/store.open"
	// SiteCheckpointReset guards the WAL truncation after a snapshot
	// has been published: a fault here leaves the new snapshot and
	// the old log both on disk — the checkpoint crash window.
	SiteCheckpointReset = "storage/checkpoint.reset"

	// SiteTenantOpen guards a server opening a tenant knowledge base.
	SiteTenantOpen = "server/tenant.open"
	// SitePreparedBind guards binding placeholders into a prepared
	// statement template.
	SitePreparedBind = "server/prepared.bind"
	// SiteRequest guards serving one query request (after admission
	// control); latency outcomes here hold request slots open.
	SiteRequest = "server/request"
)

var catalog = map[string]bool{
	SiteWALAppend:       true,
	SiteWALFlush:        true,
	SiteWALSync:         true,
	SiteWALOpen:         true,
	SiteWALReplay:       true,
	SiteWALRewind:       true,
	SiteSnapshotSweep:   true,
	SiteSnapshotWrite:   true,
	SiteSnapshotSync:    true,
	SiteSnapshotRename:  true,
	SiteDirSync:         true,
	SiteStoreOpen:       true,
	SiteCheckpointReset: true,
	SiteTenantOpen:      true,
	SitePreparedBind:    true,
	SiteRequest:         true,
}

// Catalog returns every known site name, sorted.
func Catalog() []string {
	out := make([]string, 0, len(catalog))
	for site := range catalog {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

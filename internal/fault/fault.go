// Package fault is a deterministic, seedable failpoint registry: the
// injection side of the repo's chaos testing. Production code plants
// named sites on its fragile paths (WAL append, snapshot rename,
// tenant open, …) with fault.Inject or fault.Eval; tests arm those
// sites with an Outcome (error, panic, latency, torn write) under a
// trigger Policy (always, every Nth pass, probability with a fixed
// seed, once after K passes), drive a workload, and assert the
// recovery invariants.
//
// The registry is process-global, like the sites it names. When no
// site is armed — every production run — Inject and Eval cost one
// atomic load and zero allocations; a benchmark-enforced test pins
// that down, so leaving the sites compiled into release builds is
// free.
//
// Determinism: a Policy's probability draws come from a rand.Rand
// seeded per site at Enable time, and every other trigger mode is a
// plain pass counter, so the same seed and the same single-threaded
// workload fire the same faults. (Concurrent workloads interleave
// passes nondeterministically; the per-site state itself stays
// race-free.)
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error this package injects:
// errors.Is(err, fault.ErrInjected) identifies an injected failure
// anywhere in a wrapped chain, so tests can tell deliberate faults
// from real bugs.
var ErrInjected = errors.New("fault: injected failure")

// Outcome is what happens when an armed site triggers. Delay applies
// first, then Panic, then Err; a triggered Outcome with none of them
// set (and no TornBytes) is pure latency injection — the site sleeps
// and proceeds normally.
type Outcome struct {
	// Err, when non-nil, is returned by the site. Use ErrInjected (or
	// an error wrapping it) so invariant checks can recognize it.
	Err error
	// Panic makes the site panic, exercising the containment layers
	// (the query governor's PanicError, deferred unlocks).
	Panic bool
	// Delay sleeps at the site before any other effect.
	Delay time.Duration
	// TornBytes > 0 asks a write site to persist only that many bytes
	// of the record it was about to write, then fail as if the process
	// had crashed mid-write. Only sites that document torn-write
	// support honor it (the WAL append path); elsewhere it behaves
	// like a plain error.
	TornBytes int
}

// Fire applies the outcome at site: sleeps Delay, panics if Panic,
// and returns Err (wrapped so errors.Is sees ErrInjected even when
// the caller armed a bare Err that does not wrap it).
func (o *Outcome) Fire(site string) error {
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic {
		panic(fmt.Sprintf("fault: injected panic at %s", site))
	}
	if o.Err == nil {
		return nil
	}
	if errors.Is(o.Err, ErrInjected) {
		return o.Err
	}
	return fmt.Errorf("%w at %s: %w", ErrInjected, site, o.Err)
}

// Policy decides on which passes through a site the outcome fires.
// The zero Policy triggers on every pass. Fields compose: SkipFirst
// and Times apply to every mode, and EveryNth/Prob select among the
// remaining passes.
type Policy struct {
	// SkipFirst suppresses the first K passes through the site.
	SkipFirst int
	// Times bounds how many triggers fire in total (0 = unlimited).
	// SkipFirst: K, Times: 1 is "once, after K passes".
	Times int
	// EveryNth triggers on every Nth eligible pass (0 and 1 mean
	// every pass).
	EveryNth int
	// Prob triggers with this probability per eligible pass, drawn
	// from a rand.Rand seeded with Seed (0 disables the mode).
	Prob float64
	// Seed seeds the site's probability stream; two Enable calls with
	// the same Seed draw identical streams.
	Seed int64
}

// point is one armed site.
type point struct {
	mu      sync.Mutex
	outcome Outcome
	policy  Policy
	rng     *rand.Rand
	passes  int
	fired   int
}

// trigger decides whether this pass fires, advancing the pass state.
func (p *point) trigger() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	pass := p.passes
	p.passes++
	if pass < p.policy.SkipFirst {
		return false
	}
	if p.policy.Times > 0 && p.fired >= p.policy.Times {
		return false
	}
	if n := p.policy.EveryNth; n > 1 && (pass-p.policy.SkipFirst)%n != 0 {
		return false
	}
	if p.policy.Prob > 0 && p.rng.Float64() >= p.policy.Prob {
		return false
	}
	p.fired++
	return true
}

var (
	// armed counts enabled sites; it gates the fast path, so a
	// disabled registry costs exactly one atomic load per site pass.
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable arms site with an outcome and a policy, replacing any
// earlier arming (and its pass counters). The site must be in the
// Catalog — arming a misspelled site would otherwise silently test
// nothing.
func Enable(site string, o Outcome, p Policy) error {
	if _, ok := catalog[site]; !ok {
		return fmt.Errorf("fault: unknown site %q", site)
	}
	pt := &point{outcome: o, policy: p, rng: rand.New(rand.NewSource(p.Seed))}
	mu.Lock()
	if _, ok := points[site]; !ok {
		armed.Add(1)
	}
	points[site] = pt
	mu.Unlock()
	return nil
}

// Disable disarms site; passes through it return to the zero-cost
// path (once no sites remain armed).
func Disable(site string) {
	mu.Lock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	for site := range points {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Active returns the armed site names, sorted.
func Active() []string {
	mu.Lock()
	out := make([]string, 0, len(points))
	for site := range points {
		out = append(out, site)
	}
	mu.Unlock()
	sort.Strings(out)
	return out
}

// Hits reports how many times the armed site has triggered (0 for a
// disarmed site).
func Hits(site string) int {
	mu.Lock()
	pt := points[site]
	mu.Unlock()
	if pt == nil {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.fired
}

// Eval records one pass through site and returns the triggered
// outcome, or nil. Sites that need outcome details beyond an error —
// torn-write byte counts — call Eval and interpret the Outcome
// themselves; everything else uses Inject. The returned Outcome is
// shared and must not be mutated. Eval is on the append/flush hot
// path of every durable write: while no site is armed it must stay a
// single atomic load, with zero allocation.
//
//kdb:hotpath
func Eval(site string) *Outcome {
	if armed.Load() == 0 {
		return nil
	}
	return evalSlow(site)
}

//go:noinline
func evalSlow(site string) *Outcome {
	mu.Lock()
	pt := points[site]
	mu.Unlock()
	if pt == nil || !pt.trigger() {
		return nil
	}
	return &pt.outcome
}

// Inject records one pass through site and fires the triggered
// outcome: sleeps, panics, or returns the injected error. It returns
// nil when the site is disarmed, the policy does not trigger, or the
// outcome is latency-only. Like Eval, the disarmed fast path is one
// atomic load and allocation-free.
//
//kdb:hotpath
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	o := evalSlow(site)
	if o == nil {
		return nil
	}
	return o.Fire(site)
}

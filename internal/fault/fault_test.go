package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsZeroCost(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject(SiteWALAppend); err != nil {
			t.Fatal(err)
		}
		if o := Eval(SiteWALAppend); o != nil {
			t.Fatal("disabled site evaluated an outcome")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled failpoint pass allocates %.1f objects, want 0", allocs)
	}
}

func TestUnknownSiteRejected(t *testing.T) {
	if err := Enable("storage/wal.apend", Outcome{Err: ErrInjected}, Policy{}); err == nil {
		t.Fatal("misspelled site must be rejected")
	}
}

func TestErrorInjectionAndHits(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteWALSync, Outcome{Err: ErrInjected}, Policy{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Inject(SiteWALSync); !errors.Is(err, ErrInjected) {
			t.Fatalf("pass %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := Hits(SiteWALSync); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	Disable(SiteWALSync)
	if err := Inject(SiteWALSync); err != nil {
		t.Fatalf("disarmed site injected %v", err)
	}
}

func TestBareErrorsWrapped(t *testing.T) {
	t.Cleanup(Reset)
	cause := errors.New("disk on fire")
	if err := Enable(SiteSnapshotSync, Outcome{Err: cause}, Policy{}); err != nil {
		t.Fatal(err)
	}
	err := Inject(SiteSnapshotSync)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want both ErrInjected and the cause", err)
	}
}

func TestOncePolicyAfterK(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteWALAppend, Outcome{Err: ErrInjected}, Policy{SkipFirst: 2, Times: 1}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 0; i < 6; i++ {
		if Inject(SiteWALAppend) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired on passes %v, want exactly pass 2", fired)
	}
}

func TestEveryNthPolicy(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteWALAppend, Outcome{Err: ErrInjected}, Policy{EveryNth: 3}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 0; i < 9; i++ {
		if Inject(SiteWALAppend) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{0, 3, 6}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired on passes %v, want %v", fired, want)
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	run := func(seed int64) []int {
		if err := Enable(SiteWALSync, Outcome{Err: ErrInjected}, Policy{Prob: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 64; i++ {
			if Inject(SiteWALSync) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different streams: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical streams %v", a)
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("p=0.5 fired %d/64 times; the policy is not probabilistic", len(a))
	}
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteRequest, Outcome{Panic: true}, Policy{Times: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("site did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, SiteRequest) {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	Inject(SiteRequest)
}

func TestLatencyOnlyOutcomeProceeds(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteRequest, Outcome{Delay: 10 * time.Millisecond}, Policy{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(SiteRequest); err != nil {
		t.Fatalf("latency-only outcome returned %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("site returned after %v, want >= 10ms", d)
	}
}

func TestTornBytesVisibleThroughEval(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteWALAppend, Outcome{TornBytes: 5}, Policy{}); err != nil {
		t.Fatal(err)
	}
	o := Eval(SiteWALAppend)
	if o == nil || o.TornBytes != 5 {
		t.Fatalf("Eval = %+v, want TornBytes 5", o)
	}
}

func TestConcurrentPassesAreRaceFree(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteWALAppend, Outcome{Err: ErrInjected}, Policy{EveryNth: 2}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var hits atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Inject(SiteWALAppend) != nil {
					hits.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := Hits(SiteWALAppend); int64(got) != hits.load() {
		t.Fatalf("Hits = %d, callers observed %d", got, hits.load())
	}
	if got := Hits(SiteWALAppend); got != 400 {
		t.Fatalf("every-2nd policy fired %d/800 passes, want 400", got)
	}
}

func TestActiveAndCatalog(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable(SiteDirSync, Outcome{Err: ErrInjected}, Policy{}); err != nil {
		t.Fatal(err)
	}
	if got := Active(); len(got) != 1 || got[0] != SiteDirSync {
		t.Fatalf("Active = %v", got)
	}
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog lists %d sites, want the full set", len(cat))
	}
	for _, site := range cat {
		if err := Enable(site, Outcome{}, Policy{}); err != nil {
			t.Fatalf("catalog site %s not enableable: %v", site, err)
		}
	}
}

// atomic64 avoids importing sync/atomic just for the test tally.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func BenchmarkInjectDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Inject(SiteWALAppend) != nil {
			b.Fatal("disabled site fired")
		}
	}
}

package fault

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// siteNameRe matches a fully-qualified failpoint name in backticks.
// Only the DESIGN §5g catalog sentence uses this form, so scanning the
// whole document recovers exactly that list.
var siteNameRe = regexp.MustCompile("`((?:storage|server)/[a-z.]+)`")

// TestCatalogMatchesDesignDoc keeps the DESIGN §5g failpoint catalog
// and the compiled-in registry in lock-step: a site added to the code
// without documentation (or documented without existing) fails here.
func TestCatalogMatchesDesignDoc(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	seen := map[string]bool{}
	var documented []string
	for _, m := range siteNameRe.FindAllStringSubmatch(string(data), -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			documented = append(documented, m[1])
		}
	}
	sort.Strings(documented)

	registered := Catalog()
	for _, site := range registered {
		if !seen[site] {
			t.Errorf("site %s is registered but missing from the DESIGN §5g catalog sentence", site)
		}
		delete(seen, site)
	}
	for site := range seen {
		t.Errorf("site %s is documented in DESIGN §5g but not registered in the fault catalog", site)
	}
	if len(documented) != len(registered) {
		t.Errorf("DESIGN documents %d sites, catalog registers %d", len(documented), len(registered))
	}
}
